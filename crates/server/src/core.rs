//! The steppable server core: job monitor, communicator, controller and
//! worker logic of one ThemisIO server (§4.1), independent of any thread or
//! transport so it can be driven by the threaded runtime, by tests, or by a
//! virtual clock.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use themis_baselines::Algorithm;
use themis_core::durability::DurabilitySpec;
use themis_core::engine::PolicyEngine;
use themis_core::entity::JobMeta;
use themis_core::job_table::JobTable;
use themis_core::policy::{Policy, PolicyError};
use themis_core::request::{Completion, IoRequest, OpKind};
use themis_core::shares::ShareMap;
use themis_core::sync::{LambdaClock, SyncConfig};
use themis_device::{DeviceConfig, DeviceModel, DeviceTimeline};
use themis_fs::{BurstBufferFs, FsError, OpenFlags, Whence};
use themis_net::message::{FsOp, FsReply, StageReply};
use themis_stage::{
    extent_checksum, write_back_guarded, BackingStore, CapacityTier, DrainPipeline, DrainStatus,
    MigrationOutcome, RebalancePipeline, RebalanceStatus, ReplicatePipeline, ReplicateStatus,
    RestorePipeline, RestoreTarget, ScrubPipeline, ScrubStatus, StagedEngine, StagingConfig,
    TrafficClass,
};
use themis_telemetry::{
    Counter, DecisionTrace, Gauge, Histogram, MetricsRegistry, SeriesKey, TraceDump, TraceEvent,
    TraceKind, TraceLane,
};

/// Configuration of one server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Arbitration algorithm (ThemisIO with a policy, FIFO, GIFT or TBF).
    pub algorithm: Algorithm,
    /// Device model of this server's storage.
    pub device: DeviceConfig,
    /// λ-sync configuration.
    pub sync: SyncConfig,
    /// Heartbeat timeout after which a silent job is marked inactive (ns).
    pub heartbeat_timeout_ns: u64,
    /// Seed for the statistical-token draws, so runs are reproducible.
    pub rng_seed: u64,
    /// Staging configuration: when set, the server runs a capacity tier
    /// behind the burst buffer, drains dirty extents to it in the background
    /// (arbitrated by the policy engine at the configured foreground:drain
    /// weight), and evicts clean extents under watermark pressure.
    pub staging: Option<StagingConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            algorithm: Algorithm::Themis(Policy::size_fair()),
            device: DeviceConfig::optane_ssd(),
            sync: SyncConfig::default(),
            heartbeat_timeout_ns: 5_000_000_000,
            rng_seed: 0x007e_1105,
            staging: None,
        }
    }
}

/// A staging reply that became ready during a poll (or synchronously while
/// handling a staging message), to be routed back by its request id.
#[derive(Debug, Clone)]
pub struct StageReady {
    /// Client-chosen request id.
    pub request_id: u64,
    /// The staging reply payload.
    pub reply: StageReply,
}

/// What a read-through read targets: a descriptor cursor or an absolute
/// position.
enum ReadTarget<'a> {
    Fd(u64),
    At(&'a str, u64),
}

/// A foreground operation parked behind policy-admitted restore traffic:
/// the request was released by the engine, found its target extents
/// evicted, and now waits for the restore pipeline to bring them back
/// before it executes (and is charged device time).
struct ParkedOp {
    request_id: u64,
    request: IoRequest,
    op: FsOp,
    /// When the op was parked, so the wake path can record the park
    /// duration (`park_ns`) it spent waiting behind arbitrated restores.
    parked_at_ns: u64,
    /// `(shard, path, stripe)` keys of the restores this op still waits on.
    /// Empty for an op parked purely for ordering (blocked-only): it queued
    /// no restores and waits only for the earlier overlapping ops ahead of
    /// it to execute.
    keys: std::collections::HashSet<(usize, String, u64)>,
    /// Every extent key the op targets — resident or evicted, not just the
    /// keys it queued restores for. Two parked ops whose full key sets
    /// intersect target overlapping extents, so the later one must not
    /// execute before the earlier one even if its own remaining keys empty
    /// first (their restores may land in different ticks), and a later
    /// foreground op whose extents are all resident must still park behind
    /// a parked op it overlaps ([`ServerCore::park_if_overlaps_parked`]).
    all_keys: std::collections::HashSet<(usize, String, u64)>,
}

/// An explicit `StageIn` request waiting for its queued restores.
struct PendingStageIn {
    request_id: u64,
    keys: std::collections::HashSet<(usize, String, u64)>,
    restored_bytes: u64,
}

/// Pre-resolved per-tenant instrument handles, interned on a tenant's first
/// completion so the completion path never touches the registry lock again.
struct TenantStats {
    ops_completed: Counter,
    bytes_completed: Counter,
    queue_delay_ns: Histogram,
    service_ns: Histogram,
}

/// The server's own telemetry: the (deployment-shared) metrics registry plus
/// pre-resolved handles for the layers the policy engine cannot see —
/// per-tenant completion accounting, foreground parking, burst-buffer
/// residency — and a decision-trace ring for park/wake events, merged with
/// the engine's scheduler ring by [`ServerCore::trace_dump_snapshot`].
///
/// Park/wake series live on the foreground class series
/// (`SeriesKey::class(server, "foreground")`); residency counters and the
/// instantaneous capacity gauges live on the `"fs"` layer series.
struct CoreTelemetry {
    registry: MetricsRegistry,
    tenants: HashMap<u64, TenantStats>,
    parked_ops: Counter,
    wakes: Counter,
    park_ns: Histogram,
    residency_hit_ops: Counter,
    residency_hit_bytes: Counter,
    residency_miss_ops: Counter,
    residency_miss_bytes: Counter,
    resident_bytes: Gauge,
    dirty_bytes: Gauge,
    backing_bytes: Gauge,
    trace: DecisionTrace,
}

impl CoreTelemetry {
    fn new(registry: MetricsRegistry, server: usize) -> Self {
        let fg = SeriesKey::class(server, "foreground");
        let fs = SeriesKey::class(server, "fs");
        CoreTelemetry {
            tenants: HashMap::new(),
            parked_ops: registry.counter(fg, "parked_ops"),
            wakes: registry.counter(fg, "wakes"),
            park_ns: registry.histogram(fg, "park_ns"),
            residency_hit_ops: registry.counter(fs, "residency_hit_ops"),
            residency_hit_bytes: registry.counter(fs, "residency_hit_bytes"),
            residency_miss_ops: registry.counter(fs, "residency_miss_ops"),
            residency_miss_bytes: registry.counter(fs, "residency_miss_bytes"),
            resident_bytes: registry.gauge(fs, "resident_bytes"),
            dirty_bytes: registry.gauge(fs, "dirty_bytes"),
            backing_bytes: registry.gauge(fs, "backing_bytes"),
            trace: DecisionTrace::default(),
            registry,
        }
    }

    /// The interned handles of `job`'s per-tenant series on `server`.
    fn tenant(&mut self, server: usize, job: u64) -> &TenantStats {
        let registry = &self.registry;
        self.tenants.entry(job).or_insert_with(|| {
            let key = SeriesKey::tenant(server, job);
            TenantStats {
                ops_completed: registry.counter(key, "ops_completed"),
                bytes_completed: registry.counter(key, "bytes_completed"),
                queue_delay_ns: registry.histogram(key, "queue_delay_ns"),
                service_ns: registry.histogram(key, "service_ns"),
            }
        })
    }
}

/// The server-side staging state: the drain and restore pipelines, the
/// capacity tier and its device timeline, plus work waiting on either
/// pipeline.
struct StageState {
    pipeline: DrainPipeline,
    restore: RestorePipeline,
    scrub: ScrubPipeline,
    rebalance: RebalancePipeline,
    replicate: ReplicatePipeline,
    backing: Arc<dyn BackingStore>,
    backing_device: DeviceTimeline,
    /// The replica tier absorbing durability copies, with its own timeline:
    /// replication contends with the capacity tier for nothing but the
    /// burst-device slots the engine grants the replicate lane.
    replica: CapacityTier,
    replica_device: DeviceTimeline,
    /// The durability policy in force (`None`: every write is local-only).
    durability: Option<DurabilitySpec>,
    /// `(capacity_write_finish_ns, seq, drained_generation)` of drains whose
    /// burst-buffer read completed.
    inflight_backing: Vec<(u64, u64, u64)>,
    /// `(finish_ns, seq)` of restores the engine released, completing when
    /// both the capacity-tier read and the burst-buffer write are done.
    inflight_restores: Vec<(u64, u64)>,
    /// `(finish_ns, seq)` of scrub verifications the engine released; the
    /// checksum is judged when the capacity-tier read completes.
    inflight_scrubs: Vec<(u64, u64)>,
    /// `(finish_ns, seq)` of shard migrations the engine released; the
    /// migration is applied to the sharded tier when its capacity-tier
    /// transfers complete.
    inflight_rebalances: Vec<(u64, u64)>,
    /// `(replica_write_finish_ns, seq)` of replicate copies the engine
    /// released; the extent's *current* bytes land on the replica tier when
    /// the transfers complete.
    inflight_replicates: Vec<(u64, u64)>,
    /// Foreground `sync` write acks parked until the replicas of every
    /// stripe they dirtied land.
    pending_sync_acks: Vec<(ReadyReply, std::collections::HashSet<(String, u64)>)>,
    /// Flushes waiting for their path's local extents to become clean.
    pending_flushes: Vec<(u64, String)>,
    /// Foreground operations waiting on restores.
    parked_ops: Vec<ParkedOp>,
    /// Explicit `StageIn` requests waiting on restores.
    pending_stage_ins: Vec<PendingStageIn>,
    /// Explicit `Scrub` requests waiting for their pass to complete, as
    /// `(request_id, pass_id)`.
    pending_scrubs: Vec<(u64, u64)>,
}

/// A reply that became ready during a [`ServerCore::poll`] call, tagged with
/// the service interval so callers can deliver it at the right (virtual or
/// real) time.
#[derive(Debug, Clone)]
pub struct ReadyReply {
    /// Client-chosen request id.
    pub request_id: u64,
    /// The reply payload.
    pub reply: FsReply,
    /// The completion record (job, timings) for accounting.
    pub completion: Completion,
}

/// One ThemisIO server: job monitor + request queues + controller + workers,
/// operating on a shared [`BurstBufferFs`].
pub struct ServerCore {
    /// Index of this server within the deployment.
    server_index: usize,
    config: ServerConfig,
    policy: Policy,
    /// Monotonic counter bumped by every accepted [`ServerCore::set_policy`];
    /// reported in control-plane acknowledgements so clients can tell which
    /// allocation epoch their traffic is arbitrated under.
    policy_epoch: u64,
    engine: Box<dyn PolicyEngine>,
    jobs: JobTable,
    lambda: LambdaClock,
    device: DeviceTimeline,
    fs: BurstBufferFs,
    rng: SmallRng,
    /// Operations queued with the scheduler but not yet executed, keyed by
    /// request sequence number.
    pending: HashMap<u64, (u64, FsOp)>,
    next_seq: u64,
    completions: u64,
    staging: Option<StageState>,
    telemetry: CoreTelemetry,
    stage_replies: Vec<StageReady>,
    /// Requests rejected at submission (e.g. a job id in the reserved drain
    /// range), answered by the next poll.
    rejected: Vec<ReadyReply>,
}

impl ServerCore {
    /// Creates a server operating on `fs`.
    ///
    /// When [`ServerConfig::staging`] is set the policy engine is wrapped in
    /// a [`StagedEngine`] so synthesized drain traffic shares the device at
    /// the configured foreground:drain weight, and a [`CapacityTier`] built
    /// from the staging config's backing device absorbs drained extents.
    pub fn new(server_index: usize, fs: BurstBufferFs, config: ServerConfig) -> Self {
        Self::with_backing(server_index, fs, config, None)
    }

    /// Like [`ServerCore::new`], but draining into a caller-supplied backing
    /// store. A multi-server deployment passes one shared [`CapacityTier`]
    /// to every server — the capacity file system behind the burst buffer is
    /// a single system, so any server can stage in extents drained by a
    /// peer. Ignored when staging is not configured.
    pub fn with_backing(
        server_index: usize,
        fs: BurstBufferFs,
        config: ServerConfig,
        backing: Option<Arc<dyn BackingStore>>,
    ) -> Self {
        Self::with_telemetry(server_index, fs, config, backing, MetricsRegistry::new())
    }

    /// Like [`ServerCore::with_backing`], but recording into a
    /// caller-supplied [`MetricsRegistry`]. A multi-server deployment passes
    /// one shared registry to every server so a single
    /// [`ServerCore::metrics_snapshot`] (answered by any server) covers the
    /// cluster. The policy engine and every staging pipeline are attached at
    /// construction, so their counters are live from the first request.
    pub fn with_telemetry(
        server_index: usize,
        fs: BurstBufferFs,
        config: ServerConfig,
        backing: Option<Arc<dyn BackingStore>>,
        registry: MetricsRegistry,
    ) -> Self {
        let policy = config.algorithm.initial_policy();
        let mut engine: Box<dyn PolicyEngine> = match &config.staging {
            Some(sc) => {
                sc.drain
                    .validate()
                    .expect("staging drain configuration must be valid");
                Box::new(StagedEngine::with_weights(
                    config.algorithm.build(),
                    sc.drain.class_weights(),
                ))
            }
            None => config.algorithm.build(),
        };
        if let Some(staged) = engine
            .as_any_mut()
            .and_then(|e| e.downcast_mut::<StagedEngine>())
        {
            staged.attach_telemetry(&registry, server_index);
        }
        let staging = config.staging.as_ref().map(|sc| {
            let mut pipeline = DrainPipeline::new(server_index, sc.drain);
            pipeline.attach_telemetry(&registry);
            let mut restore = RestorePipeline::new(server_index, sc.drain.max_inflight);
            restore.attach_telemetry(&registry);
            let mut scrub = ScrubPipeline::new(
                server_index,
                sc.drain.classes.is_enabled(TrafficClass::Scrub),
                sc.drain.scrub_interval_ns,
                sc.drain.max_inflight,
            );
            scrub.attach_telemetry(&registry);
            let mut rebalance = RebalancePipeline::new(
                server_index,
                sc.drain.classes.is_enabled(TrafficClass::Rebalance),
                sc.drain.max_inflight,
            );
            rebalance.attach_telemetry(&registry);
            // Replication runs only when the durability policy actually owes
            // replicas somewhere (and the class is not disabled outright);
            // otherwise the pipeline is constructed inert and takes no debt.
            let mut replicate = ReplicatePipeline::new(
                server_index,
                sc.drain.classes.is_enabled(TrafficClass::Replicate)
                    && sc.durability.as_ref().is_some_and(|d| d.any_replicated()),
                sc.drain.max_inflight,
            );
            replicate.attach_telemetry(&registry);
            let backing = backing.unwrap_or_else(|| match &sc.sharding {
                Some(spec) => {
                    let store = spec.build().expect("staging shard spec must be valid");
                    Arc::new(store) as Arc<dyn BackingStore>
                }
                None => Arc::new(CapacityTier::new(sc.backing_device)) as Arc<dyn BackingStore>,
            });
            // Per-child health/latency series for a sharded tier, whether the
            // router was built here or handed in by the deployment (idempotent
            // for stores another server already attached to the same registry).
            if let Some(sharded) = backing.as_sharded() {
                sharded.attach_telemetry(&registry);
            }
            // The timeline models the tier the drains actually land on: a
            // sharded router advertises its slowest child.
            let backing_model = if backing.as_sharded().is_some() {
                backing.device()
            } else {
                sc.backing_device
            };
            StageState {
                pipeline,
                restore,
                scrub,
                rebalance,
                replicate,
                backing,
                backing_device: DeviceTimeline::new(DeviceModel::new(backing_model)),
                // The replica tier is deliberately *not* the capacity tier:
                // a copy that survives losing the burst buffer must live on
                // independent media, modelled with its own timeline.
                replica: CapacityTier::new(sc.backing_device),
                replica_device: DeviceTimeline::new(DeviceModel::new(sc.backing_device)),
                durability: sc.durability.clone(),
                inflight_backing: Vec::new(),
                inflight_restores: Vec::new(),
                inflight_scrubs: Vec::new(),
                inflight_rebalances: Vec::new(),
                inflight_replicates: Vec::new(),
                pending_sync_acks: Vec::new(),
                pending_flushes: Vec::new(),
                parked_ops: Vec::new(),
                pending_stage_ins: Vec::new(),
                pending_scrubs: Vec::new(),
            }
        });
        let telemetry = CoreTelemetry::new(registry, server_index);
        let mut jobs = JobTable::with_heartbeat_timeout(config.heartbeat_timeout_ns);
        // A server index past the presence mask's capacity cannot be
        // attributed in per-job presence masks; run with the global view
        // (no viewpoint — localize_shares passes shares through unscaled)
        // instead of aliasing onto the last bit and corrupting server spans.
        let _ = jobs.set_viewpoint(server_index);
        ServerCore {
            server_index,
            policy,
            policy_epoch: 0,
            engine,
            jobs,
            lambda: LambdaClock::new(config.sync),
            device: DeviceTimeline::new(DeviceModel::new(config.device)),
            fs,
            rng: SmallRng::seed_from_u64(config.rng_seed ^ server_index as u64),
            pending: HashMap::new(),
            next_seq: 0,
            config,
            completions: 0,
            staging,
            telemetry,
            stage_replies: Vec::new(),
            rejected: Vec::new(),
        }
    }

    /// The metrics registry this server records into (shared across the
    /// deployment when constructed via [`ServerCore::with_telemetry`]).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.telemetry.registry
    }

    /// This server's index.
    pub fn server_index(&self) -> usize {
        self.server_index
    }

    /// The configuration this server was created with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The sharing policy in force.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The current policy epoch (0 at boot, +1 per [`ServerCore::set_policy`]).
    pub fn policy_epoch(&self) -> u64 {
        self.policy_epoch
    }

    /// Swaps the sharing policy on the live server and returns the new
    /// epoch. The engine re-derives shares immediately; requests already
    /// admitted stay queued in arrival order and are arbitrated under the
    /// new allocation from the next worker poll — the epoch boundary moves
    /// shares, never requests.
    ///
    /// Rejected (policy, epoch and engine untouched) when the policy fails
    /// [`Policy::validate`] — defence in depth for values that arrived over
    /// the wire — or when the running engine is a fixed-algorithm baseline
    /// that would silently ignore the swap
    /// ([`PolicyError::UnsupportedEngine`]).
    pub fn set_policy(&mut self, policy: Policy) -> Result<u64, PolicyError> {
        policy.validate()?;
        if !self.engine.honors_policy() {
            return Err(PolicyError::UnsupportedEngine(self.engine.name()));
        }
        self.policy = policy;
        self.policy_epoch += 1;
        // Stamp the new epoch onto the scheduler's decision trace, so a
        // trace dump shows exactly which allocation each decision ran under.
        if let Some(staged) = self
            .engine
            .as_any_mut()
            .and_then(|e| e.downcast_mut::<StagedEngine>())
        {
            staged.set_trace_epoch(self.policy_epoch);
        }
        self.engine.reconfigure(&self.jobs, &self.policy);
        Ok(self.policy_epoch)
    }

    /// The configured λ interval.
    pub fn lambda_interval_ns(&self) -> u64 {
        self.lambda.interval_ns()
    }

    /// Number of requests queued and not yet served.
    pub fn queued(&self) -> usize {
        self.engine.queued()
    }

    /// Number of completed requests.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// The scheduler's current nominal share assignment.
    pub fn shares(&self) -> ShareMap {
        self.engine.shares()
    }

    /// The shared file system this server operates on.
    pub fn fs(&self) -> &BurstBufferFs {
        &self.fs
    }

    // ------------------------------------------------------------ job admin

    /// Handles a client hello or heartbeat (§4.1 job monitor).
    pub fn heartbeat(&mut self, meta: JobMeta, now_ns: u64) {
        self.jobs.heartbeat(meta, now_ns);
        self.engine.reconfigure(&self.jobs, &self.policy);
    }

    /// Handles a clean client disconnect.
    pub fn client_bye(&mut self, meta: JobMeta, _now_ns: u64) {
        self.jobs.remove(meta.job);
        self.engine.reconfigure(&self.jobs, &self.policy);
    }

    /// Expires silent jobs and refreshes shares if anything changed.
    pub fn expire_jobs(&mut self, now_ns: u64) {
        if self.jobs.expire(now_ns) > 0 {
            self.engine.reconfigure(&self.jobs, &self.policy);
        }
    }

    /// The server's local job status table (what it broadcasts at λ-sync).
    pub fn local_table(&self) -> JobTable {
        self.jobs.clone()
    }

    /// Whether a λ-sync round is due at `now_ns`.
    pub fn sync_due(&self, now_ns: u64) -> bool {
        self.lambda.due(now_ns)
    }

    /// Absorbs peer tables received in an all-gather round and marks the
    /// round complete (§3.1).
    pub fn absorb_peer_tables<'a>(
        &mut self,
        tables: impl IntoIterator<Item = &'a JobTable>,
        now_ns: u64,
    ) {
        for t in tables {
            self.jobs.merge_from(t);
        }
        self.lambda.mark(now_ns);
        self.engine.reconfigure(&self.jobs, &self.policy);
    }

    // --------------------------------------------------------------- the IO path

    /// Accepts an I/O request from a client: the communicator records the
    /// job, assigns a sequence number, and queues the request with the
    /// arbitration algorithm.
    ///
    /// Job ids in the reserved system range
    /// ([`themis_core::entity::RESERVED_JOB_BASE`] — the same boundary the
    /// client asserts against) are rejected with an error reply (delivered by
    /// the next [`ServerCore::poll`]): admitting one would let a client
    /// smuggle traffic into the drain class — or, worse, have the request
    /// mistaken for a drain and silently dropped.
    pub fn submit(&mut self, request_id: u64, meta: JobMeta, op: FsOp, now_ns: u64) {
        if meta.is_reserved() {
            let seq = self.next_seq;
            self.next_seq += 1;
            let request = IoRequest::new(seq, meta, op.op_kind(), op.payload_bytes(), now_ns);
            self.rejected.push(ReadyReply {
                request_id,
                reply: FsReply::Error(format!(
                    "job id {} is inside the reserved system job-id range (>= {})",
                    meta.job,
                    themis_core::entity::RESERVED_JOB_BASE
                )),
                completion: Completion {
                    request,
                    start_ns: now_ns,
                    finish_ns: now_ns,
                },
            });
            return;
        }
        self.jobs.observe_request(meta, now_ns);
        let seq = self.next_seq;
        self.next_seq += 1;
        let request = IoRequest::new(seq, meta, op.op_kind(), op.payload_bytes(), now_ns);
        self.pending.insert(seq, (request_id, op));
        self.engine.admit(request);
    }

    /// Runs the worker loop at `now_ns`: while the device has an idle worker
    /// and the scheduler releases a request, execute it against the file
    /// system and record its service interval. Returns the replies that
    /// became ready, in completion order.
    ///
    /// With staging enabled the same loop also runs the staging pipelines:
    /// completed capacity-tier writes mark their extents clean, completed
    /// restores land their extents back in the shard (waking any parked
    /// foreground operations), watermark pressure evicts clean extents,
    /// fresh dirty extents are admitted as drain requests, queued restore
    /// targets are admitted as restore requests, and class requests the
    /// engine releases are executed against the burst-buffer device and the
    /// capacity tier. A foreground request whose target extents are evicted
    /// is *parked*: its restores are synthesized as policy-admitted
    /// [`TrafficClass::Restore`] traffic and the request executes — and is
    /// charged device time — only once they land, so stage-in bandwidth is
    /// arbitrated exactly like everything else instead of being stolen on
    /// the read path.
    pub fn poll(&mut self, now_ns: u64) -> Vec<ReadyReply> {
        let mut ready = std::mem::take(&mut self.rejected);
        self.stage_tick(now_ns, &mut ready);
        while self.device.has_idle_worker(now_ns) {
            let Some(request) = self.engine.select(now_ns, &mut self.rng) else {
                break;
            };
            match TrafficClass::of(request.meta.job) {
                Some(TrafficClass::Drain) => {
                    self.execute_drain(&request, now_ns);
                    continue;
                }
                Some(TrafficClass::Restore) => {
                    self.execute_restore(&request, now_ns);
                    continue;
                }
                Some(TrafficClass::Scrub) => {
                    self.execute_scrub(&request, now_ns);
                    continue;
                }
                Some(TrafficClass::Rebalance) => {
                    self.execute_rebalance(&request, now_ns);
                    continue;
                }
                Some(TrafficClass::Replicate) => {
                    self.execute_replicate(&request, now_ns);
                    continue;
                }
                None => {}
            }
            let (request_id, op) = self
                .pending
                .remove(&request.seq)
                .expect("every queued request has a pending op");
            if self.park_if_needs_restore(request_id, &request, &op, now_ns) {
                // The op waits for its restores; the worker stays free for
                // other traffic (including the restores themselves).
                continue;
            }
            if self.park_if_overlaps_parked(request_id, &request, &op, now_ns) {
                // Every extent the op targets is resident, but an *earlier*
                // parked op overlaps them: executing now would let this
                // op's bytes be clobbered when the earlier op's restores
                // land and it executes last. Park behind it instead
                // (admission order), with no restores of its own.
                continue;
            }
            // The stripes a write dirties are computed *before* execution:
            // cursor writes move their descriptor's cursor when they run.
            let spans = self.write_spans(&op);
            let (start_ns, finish_ns) = self.device.dispatch(&request, now_ns);
            let reply = self.execute(&op, finish_ns);
            let completion = Completion {
                request,
                start_ns,
                finish_ns,
            };
            self.engine.complete(&completion);
            self.completions += 1;
            self.record_completion(&completion);
            self.note_durable_write(
                spans,
                ReadyReply {
                    request_id,
                    reply,
                    completion,
                },
                &mut ready,
                now_ns,
            );
        }
        ready
    }

    /// Records one foreground completion into its tenant's series: the op
    /// and byte totals the conformance oracle cross-checks against
    /// reply-derived accounting, plus queue-delay and service histograms.
    fn record_completion(&mut self, completion: &Completion) {
        let stats = self
            .telemetry
            .tenant(self.server_index, completion.request.meta.job.0);
        stats.ops_completed.inc();
        stats.bytes_completed.add(completion.request.bytes);
        stats.queue_delay_ns.record(completion.queue_delay_ns());
        stats.service_ns.record(completion.service_ns());
    }

    /// Records a park or wake decision into the core's trace ring. The
    /// virtual times are 0: parking happens outside the engine, after the
    /// slot was already granted.
    fn trace_park_event(&mut self, now_ns: u64, kind: TraceKind, request: &IoRequest) {
        self.telemetry.trace.record(TraceEvent {
            now_ns,
            server: self.server_index as u32,
            kind,
            lane: TraceLane::Foreground,
            job: request.meta.job.0,
            bytes: request.bytes,
            lane_vtime: 0.0,
            fg_vtime: 0.0,
            epoch: self.policy_epoch,
        });
    }

    // ------------------------------------------------------------- staging

    /// Whether this server runs the staging subsystem.
    pub fn staging_enabled(&self) -> bool {
        self.staging.is_some()
    }

    /// The capacity tier behind this server (for tests and inspection).
    pub fn backing(&self) -> Option<&Arc<dyn BackingStore>> {
        self.staging.as_ref().map(|s| &s.backing)
    }

    /// Refreshes the instantaneous capacity gauges (`fs` layer series) from
    /// the file system and capacity tier. Called before every status or
    /// metrics snapshot: gauges describe *now*, so they are sampled at read
    /// time rather than maintained on the write path.
    fn refresh_gauges(&self) {
        self.telemetry
            .resident_bytes
            .set(self.fs.resident_bytes_on(self.server_index) as i64);
        self.telemetry
            .dirty_bytes
            .set(self.fs.dirty_bytes_on(self.server_index) as i64);
        let backing = self
            .staging
            .as_ref()
            .map_or(0, |st| st.backing.bytes_stored());
        self.telemetry.backing_bytes.set(backing as i64);
    }

    /// A point-in-time staging status snapshot, `None` when staging is
    /// disabled. Includes the restore backlog
    /// ([`DrainStatus::pending_restore_bytes`]) so clients can observe the
    /// stage-in queue delay their reads of evicted data will land behind.
    ///
    /// The status is a **view over the metrics registry**: every monotonic
    /// counter comes from one sorted-order registry read (see
    /// `MetricsRegistry::snapshot`), so the derived restore backlog
    /// (`requested - completed`) can never go negative even when a snapshot
    /// is cut mid-restore; only the instantaneous fields (gauges, inflight
    /// depth) are sampled from the live structures.
    pub fn drain_status_snapshot(&self) -> Option<DrainStatus> {
        let st = self.staging.as_ref()?;
        self.refresh_gauges();
        let snap = self.telemetry.registry.snapshot(0);
        let s = self.server_index as u32;
        let drain = TrafficClass::Drain.name();
        let restore = TrafficClass::Restore.name();
        let requested = snap.counter(s, 0, restore, "requested_bytes");
        let completed = snap.counter(s, 0, restore, "completed_bytes");
        debug_assert!(completed <= requested);
        Some(DrainStatus {
            resident_bytes: snap.gauge(s, 0, "fs", "resident_bytes") as u64,
            dirty_bytes: snap.gauge(s, 0, "fs", "dirty_bytes") as u64,
            backing_bytes: snap.gauge(s, 0, "fs", "backing_bytes") as u64,
            inflight_extents: st.pipeline.inflight_len(),
            drained_bytes: snap.counter(s, 0, drain, "drained_bytes"),
            drained_ops: snap.counter(s, 0, drain, "drained_ops"),
            evicted_bytes: snap.counter(s, 0, drain, "evicted_bytes"),
            evicted_extents: snap.counter(s, 0, drain, "evicted_extents"),
            // `completed_bytes` sorts (and is loaded) before
            // `requested_bytes` in *this* snapshot, but the two counters are
            // still maintained independently — saturate rather than betting
            // the status message on a load-order invariant a future metric
            // rename would silently break.
            pending_restore_bytes: requested.saturating_sub(completed),
            restored_bytes: snap.counter(s, 0, restore, "restored_bytes"),
            restored_ops: snap.counter(s, 0, restore, "restored_ops"),
        })
    }

    /// Takes the staging replies that became ready (flush acknowledgements,
    /// stage-in results, status snapshots).
    pub fn take_stage_replies(&mut self) -> Vec<StageReady> {
        std::mem::take(&mut self.stage_replies)
    }

    /// Rejects staging-message metadata that claims a reserved job id (same
    /// boundary as [`ServerCore::submit`]): observing it would register the
    /// drain identity as a live tenant and dilute every real tenant's share.
    fn reject_reserved_stage(&mut self, request_id: u64, meta: &JobMeta) -> bool {
        if !meta.is_reserved() {
            return false;
        }
        self.stage_replies.push(StageReady {
            request_id,
            reply: StageReply::Error(format!(
                "job id {} is inside the reserved system job-id range (>= {})",
                meta.job,
                themis_core::entity::RESERVED_JOB_BASE
            )),
        });
        true
    }

    /// Handles a `Flush` request: acknowledge immediately when the path has
    /// no dirty local extents (the no-op case), otherwise wait for the
    /// background drain — which the flush does not bypass; it is ordinary
    /// policy-arbitrated drain traffic — to make the path clean.
    pub fn flush(&mut self, request_id: u64, meta: JobMeta, path: &str, now_ns: u64) {
        if self.reject_reserved_stage(request_id, &meta) {
            return;
        }
        self.jobs.observe_request(meta, now_ns);
        let path = match themis_fs::path::normalize(path) {
            Ok(p) => p,
            Err(e) => {
                self.stage_replies.push(StageReady {
                    request_id,
                    reply: StageReply::Error(e.to_string()),
                });
                return;
            }
        };
        let server = self.server_index;
        let Some(st) = self.staging.as_mut() else {
            self.stage_replies.push(StageReady {
                request_id,
                reply: StageReply::Error("staging is not enabled on this server".into()),
            });
            return;
        };
        let busy = self.fs.path_dirty_on(server, &path).unwrap_or(false)
            || st.pipeline.has_inflight_for(&path);
        if busy {
            st.pending_flushes.push((request_id, path));
        } else {
            let backing_bytes = st.backing.bytes_for(&path);
            self.stage_replies.push(StageReady {
                request_id,
                reply: StageReply::Flushed { backing_bytes },
            });
        }
    }

    /// Handles a `StageIn` request: restores the evicted extents of the path
    /// on **this server's shard** from the capacity tier. Like dirty state,
    /// evicted state is server-local — the client broadcasts `StageIn` so
    /// every shard restores its own stripes exactly once (no duplicated
    /// restore work, exact byte counts).
    ///
    /// The restores are synthesized as policy-admitted
    /// [`TrafficClass::Restore`] requests — a large stage-in no longer
    /// bypasses the engine and cannot starve policy-arbitrated foreground
    /// traffic — so the acknowledgement is deferred until every queued
    /// extent has landed (delivered by a later [`ServerCore::poll`]).
    pub fn stage_in(&mut self, request_id: u64, meta: JobMeta, path: &str, now_ns: u64) {
        if self.reject_reserved_stage(request_id, &meta) {
            return;
        }
        self.jobs.observe_request(meta, now_ns);
        let path = match themis_fs::path::normalize(path) {
            Ok(p) => p,
            Err(e) => {
                self.stage_replies.push(StageReady {
                    request_id,
                    reply: StageReply::Error(e.to_string()),
                });
                return;
            }
        };
        let shard = self.server_index;
        let evicted = self.fs.evicted_extents_on(shard, Some(&path));
        let Some(st) = self.staging.as_mut() else {
            self.stage_replies.push(StageReady {
                request_id,
                reply: StageReply::Error("staging is not enabled on this server".into()),
            });
            return;
        };
        if evicted.is_empty() {
            // Everything already resident: an immediate no-op ack.
            self.stage_replies.push(StageReady {
                request_id,
                reply: StageReply::StagedIn { restored_bytes: 0 },
            });
            return;
        }
        let mut keys = std::collections::HashSet::new();
        for (p, stripe, len) in evicted {
            let target = RestoreTarget {
                shard,
                path: p,
                stripe,
                bytes: len,
                pin_dirty: false,
            };
            keys.insert(target.key());
            st.restore.request(target);
        }
        st.pending_stage_ins.push(PendingStageIn {
            request_id,
            keys,
            restored_bytes: 0,
        });
    }

    /// Handles a `DrainStatus` request.
    pub fn drain_status(&mut self, request_id: u64) {
        let reply = match self.drain_status_snapshot() {
            Some(status) => StageReply::Status(status),
            None => StageReply::Error("staging is not enabled on this server".into()),
        };
        self.stage_replies.push(StageReady { request_id, reply });
    }

    /// A point-in-time scrub status snapshot, `None` when staging is
    /// disabled. Like [`ServerCore::drain_status_snapshot`], the monotonic
    /// verification counters are a view over one sorted registry read;
    /// structural state (pass progress, quarantine list) comes from the
    /// pipeline.
    pub fn scrub_status_snapshot(&self) -> Option<ScrubStatus> {
        let st = self.staging.as_ref()?;
        let mut status = st.scrub.status();
        let snap = self.telemetry.registry.snapshot(0);
        let s = self.server_index as u32;
        let lane = TrafficClass::Scrub.name();
        status.passes_completed = snap.counter(s, 0, lane, "passes_completed");
        status.scrubbed_extents = snap.counter(s, 0, lane, "scrubbed_extents");
        status.scrubbed_bytes = snap.counter(s, 0, lane, "scrubbed_bytes");
        status.errors_detected = snap.counter(s, 0, lane, "errors_detected");
        status.repaired_extents = snap.counter(s, 0, lane, "repaired_extents");
        status.superseded_extents = snap.counter(s, 0, lane, "superseded_extents");
        Some(status)
    }

    /// Handles a `MetricsSnapshot` request: refreshes this server's gauges
    /// and cuts one snapshot of the registry — the whole deployment's
    /// metrics when the registry is shared ([`ServerCore::with_telemetry`]).
    /// Works with or without staging; the reply is immediate.
    pub fn metrics_snapshot(&mut self, request_id: u64, now_ns: u64) {
        self.refresh_gauges();
        let snap = self.telemetry.registry.snapshot(now_ns);
        self.stage_replies.push(StageReady {
            request_id,
            reply: StageReply::Metrics(snap),
        });
    }

    /// Handles a `TraceDump` request: the newest `max_events` scheduler and
    /// park/wake decisions of **this** server, merged by decision time. The
    /// reply is immediate; the dump is empty when the telemetry crate's
    /// `trace` feature is compiled out.
    pub fn trace_dump(&mut self, request_id: u64, max_events: u64) {
        let dump = self.trace_dump_snapshot(max_events as usize);
        self.stage_replies.push(StageReady {
            request_id,
            reply: StageReply::Trace(dump),
        });
    }

    /// Merges the engine's scheduler-decision ring with the core's
    /// park/wake ring, newest `max` events retained (oldest first).
    pub fn trace_dump_snapshot(&mut self, max: usize) -> TraceDump {
        let core = self.telemetry.trace.dump(max);
        let engine = self
            .engine
            .as_any_mut()
            .and_then(|e| e.downcast_mut::<StagedEngine>())
            .map(|e| e.trace_dump(max))
            .unwrap_or_default();
        let mut events: Vec<TraceEvent> = engine.events;
        events.extend(core.events);
        events.sort_by_key(|e| e.now_ns);
        let cut = events.len() - max.min(events.len());
        let events = events.split_off(cut);
        TraceDump {
            events,
            dropped: engine.dropped + core.dropped + cut as u64,
        }
    }

    /// Handles a `Scrub` request: demands a full checksum pass over this
    /// server's share of the capacity tier — forced even when the
    /// continuous background scrubber is disabled. The acknowledgement
    /// (carrying the post-pass [`ScrubStatus`]) is **deferred** until the
    /// pass completes, delivered by a later [`ServerCore::poll`]; the
    /// verification traffic it triggers is ordinary policy-arbitrated
    /// [`TrafficClass::Scrub`] traffic, so a demand scrub cannot starve
    /// foreground tenants.
    pub fn scrub(&mut self, request_id: u64) {
        let Some(st) = self.staging.as_mut() else {
            self.stage_replies.push(StageReady {
                request_id,
                reply: StageReply::Error("staging is not enabled on this server".into()),
            });
            return;
        };
        let pass = st.scrub.force_pass();
        st.pending_scrubs.push((request_id, pass));
    }

    /// Handles a `ScrubStatus` request: an immediate snapshot reply.
    pub fn scrub_status(&mut self, request_id: u64) {
        let reply = match self.scrub_status_snapshot() {
            Some(status) => StageReply::Scrub(status),
            None => StageReply::Error("staging is not enabled on this server".into()),
        };
        self.stage_replies.push(StageReady { request_id, reply });
    }

    /// A point-in-time rebalance status snapshot, `None` when staging is
    /// disabled. Like [`ServerCore::scrub_status_snapshot`], the monotonic
    /// migration counters are a view over one sorted registry read;
    /// structural state (map, generations, inflight depth) comes from the
    /// pipeline and the sharded tier. On an unsharded tier the snapshot
    /// reports `sharded: false` with every counter zero.
    pub fn rebalance_status_snapshot(&self) -> Option<RebalanceStatus> {
        let st = self.staging.as_ref()?;
        let mut status = st.rebalance.status(st.backing.as_sharded());
        let snap = self.telemetry.registry.snapshot(0);
        let s = self.server_index as u32;
        let lane = TrafficClass::Rebalance.name();
        let requested = snap.counter(s, 0, lane, "rebalance_requested_bytes");
        let migrated = snap.counter(s, 0, lane, "rebalance_migrated_bytes");
        status.requested_bytes = requested;
        status.migrated_bytes = migrated;
        // Independently-loaded counters: saturate, never trust load order
        // (the same hazard as `DrainStatus::pending_restore_bytes`).
        status.pending_bytes = requested.saturating_sub(migrated);
        status.migrated_extents = snap.counter(s, 0, lane, "migrated_extents");
        status.copies_written = snap.counter(s, 0, lane, "copies_written");
        status.removed_extents = snap.counter(s, 0, lane, "removed_extents");
        status.superseded_extents = snap.counter(s, 0, lane, "superseded_extents");
        status.failed_extents = snap.counter(s, 0, lane, "failed_extents");
        status.passes_completed = snap.counter(s, 0, lane, "passes_completed");
        Some(status)
    }

    /// Handles a `RebalanceStatus` request: an immediate snapshot reply.
    pub fn rebalance_status(&mut self, request_id: u64) {
        let reply = match self.rebalance_status_snapshot() {
            Some(status) => StageReply::Rebalance(status),
            None => StageReply::Error("staging is not enabled on this server".into()),
        };
        self.stage_replies.push(StageReady { request_id, reply });
    }

    /// A point-in-time replication status snapshot, `None` when staging is
    /// disabled. Like [`ServerCore::rebalance_status_snapshot`], the
    /// monotonic counters are a view over one sorted registry read;
    /// structural state (queue depth, inflight, enablement) comes from the
    /// pipeline.
    pub fn replicate_status_snapshot(&self) -> Option<ReplicateStatus> {
        let st = self.staging.as_ref()?;
        let mut status = st.replicate.status();
        let snap = self.telemetry.registry.snapshot(0);
        let s = self.server_index as u32;
        let lane = TrafficClass::Replicate.name();
        let requested = snap.counter(s, 0, lane, "replicate_requested_bytes");
        let completed = snap.counter(s, 0, lane, "replicate_completed_bytes");
        status.requested_bytes = requested;
        status.completed_bytes = completed;
        // Independently-loaded counters: saturate, never trust load order
        // (the same hazard as `DrainStatus::pending_restore_bytes`).
        status.lag_bytes = requested.saturating_sub(completed);
        status.replicated_bytes = snap.counter(s, 0, lane, "replicate_replicated_bytes");
        status.replicated_extents = snap.counter(s, 0, lane, "replicated_extents");
        status.failed_replications = snap.counter(s, 0, lane, "failed_replications");
        status.sync_acks_deferred = snap.counter(s, 0, lane, "sync_acks_deferred");
        status.sync_acks_released = snap.counter(s, 0, lane, "sync_acks_released");
        Some(status)
    }

    /// Handles a `ReplicateStatus` request: an immediate snapshot reply.
    pub fn replicate_status(&mut self, request_id: u64) {
        let reply = match self.replicate_status_snapshot() {
            Some(status) => StageReply::Replicate(status),
            None => StageReply::Error("staging is not enabled on this server".into()),
        };
        self.stage_replies.push(StageReady { request_id, reply });
    }

    /// The replica tier's **verified** copy of `(path, stripe)` — `None`
    /// when staging is disabled, no replica landed, or the copy fails its
    /// checksum. The crash-before-replicate oracle reads this to prove that
    /// acked `local_plus_one`/`sync` bytes survive losing the burst tier;
    /// `local_only` data legitimately answers `None`.
    pub fn replica_extent(&self, path: &str, stripe: u64) -> Option<Vec<u8>> {
        let st = self.staging.as_ref()?;
        themis_stage::verified_read_back(&st.replica, path, stripe)
    }

    /// Demands a heal pass over the sharded capacity tier: a migration pass
    /// even without a map change, re-replicating any range a lost replica
    /// left under-replicated. A no-op without staging or on an unsharded
    /// tier.
    pub fn force_rebalance_pass(&mut self) {
        if let Some(st) = self.staging.as_mut() {
            if st.backing.as_sharded().is_some() {
                st.rebalance.force_pass();
            }
        }
    }

    /// Synchronous fallback restore of evicted extents of `path`, returning
    /// the bytes copied back. The *primary* stage-in path is the policy-
    /// admitted restore pipeline ([`ServerCore::park_if_needs_restore`]);
    /// this fallback only runs when a foreground operation discovers an
    /// eviction the parking pre-check could not see — a peer server evicting
    /// a shared-shard extent between the check and the execution — and is
    /// charged to the device timelines directly (the race window is a
    /// single operation wide, so the uncharged bandwidth is bounded).
    ///
    /// With `targets = Some(stripes)` only those stripes are restored, and
    /// they come back *pinned dirty* so a concurrent evictor cannot race the
    /// caller (the restore-for-write path: the write re-dirties them
    /// anyway, and untouched evicted extents stay in the tier — reads serve
    /// them by read-through). With `targets = None` every evicted extent of
    /// the path is restored clean (the tier still holds identical copies).
    fn restore_extents(
        &mut self,
        shards: std::ops::Range<usize>,
        path: &str,
        now_ns: u64,
        targets: Option<&std::collections::HashSet<u64>>,
    ) -> u64 {
        let Some(st) = self.staging.as_mut() else {
            return 0;
        };
        let pin_dirty = targets.is_some();
        let mut restored = 0u64;
        for shard in shards {
            for (p, stripe, _) in self.fs.evicted_extents_on(shard, Some(path)) {
                if targets.is_some_and(|set| !set.contains(&stripe)) {
                    continue;
                }
                // Verified read: a corrupt tier copy is a miss, never a
                // restore source (see the stage crate's verified_read_back).
                let Some(data) = themis_stage::verified_read_back(st.backing.as_ref(), &p, stripe)
                else {
                    continue;
                };
                // Charge the capacity tier the read and the burst buffer the
                // write-back.
                let meta = st.pipeline.meta();
                let read = IoRequest::new(0, meta, OpKind::Read, data.len() as u64, now_ns);
                let (_, read_finish) = st.backing_device.dispatch(&read, now_ns);
                let write = IoRequest::new(0, meta, OpKind::Write, data.len() as u64, read_finish);
                self.device.dispatch(&write, read_finish);
                self.fs
                    .restore_extent_on(shard, &p, stripe, &data, pin_dirty);
                restored += data.len() as u64;
            }
        }
        restored
    }

    /// One staging maintenance pass: complete capacity-tier writes and
    /// restores (waking parked foreground operations and pending stage-in
    /// acks), evict under watermark pressure, admit fresh drain and restore
    /// traffic, acknowledge finished flushes.
    fn stage_tick(&mut self, now_ns: u64, ready: &mut Vec<ReadyReply>) {
        let server = self.server_index;
        let Some(st) = self.staging.as_mut() else {
            return;
        };

        // 1. Drains whose capacity-tier write finished: mark clean (unless a
        //    concurrent write re-dirtied the extent — the generation check).
        let mut i = 0;
        while i < st.inflight_backing.len() {
            if st.inflight_backing[i].0 <= now_ns {
                let (_, seq, generation) = st.inflight_backing.swap_remove(i);
                if let Some(d) = st.pipeline.complete(seq) {
                    self.fs.mark_clean_on(server, &d.path, d.stripe, generation);
                }
            } else {
                i += 1;
            }
        }

        // 1b. Restores whose device charges finished: copy the tier's
        //     extent back into the shard and note the landed keys. This runs
        //     *before* the eviction pass so a freshly restored extent cannot
        //     be reclaimed out from under the parked op it was restored for.
        let mut landed: Vec<(usize, String, u64, u64)> = Vec::new();
        let mut i = 0;
        while i < st.inflight_restores.len() {
            if st.inflight_restores[i].0 <= now_ns {
                let (_, seq) = st.inflight_restores.swap_remove(i);
                // Read the tier copy at completion time, not admission time:
                // if the path was unlinked while the restore was in flight
                // the copy is gone and the restore degrades to a no-op
                // (delete wins here too). The read is *verified*: a corrupt
                // tier copy must never be restored into the burst buffer,
                // where it would pass for a clean repair source and launder
                // the damage past every future scrub (the scrub pass
                // quarantines it instead).
                let data = st.restore.inflight(seq).and_then(|t| {
                    themis_stage::verified_read_back(st.backing.as_ref(), &t.path, t.stripe)
                });
                let actual = data.as_ref().map(|d| d.len() as u64).unwrap_or(0);
                let Some(target) = st.restore.complete(seq, actual) else {
                    continue;
                };
                if let Some(data) = data {
                    self.fs.restore_extent_on(
                        target.shard,
                        &target.path,
                        target.stripe,
                        &data,
                        target.pin_dirty,
                    );
                }
                landed.push((target.shard, target.path, target.stripe, actual));
            } else {
                i += 1;
            }
        }

        // 1c. Wake waiters of the landed extents: pending stage-in acks
        //     accumulate restored bytes, parked foreground ops whose last
        //     restore landed execute now (charged device time from `now`).
        if !landed.is_empty() {
            let mut j = 0;
            while j < st.pending_stage_ins.len() {
                let pending = &mut st.pending_stage_ins[j];
                for (shard, path, stripe, actual) in &landed {
                    if pending.keys.remove(&(*shard, path.clone(), *stripe)) {
                        pending.restored_bytes += actual;
                    }
                }
                if pending.keys.is_empty() {
                    let done = st.pending_stage_ins.swap_remove(j);
                    self.stage_replies.push(StageReady {
                        request_id: done.request_id,
                        reply: StageReply::StagedIn {
                            restored_bytes: done.restored_bytes,
                        },
                    });
                } else {
                    j += 1;
                }
            }
            // Order-preserving wake: parked ops execute in admission order,
            // and an op whose restores all landed still waits while an
            // *earlier* parked op targeting overlapping extents (full key
            // sets intersect) is parked — otherwise two writes to the same
            // stripe could swap when their restores land in different
            // ticks. `Vec::remove`, not `swap_remove`, keeps the order.
            let mut unparked: Vec<ParkedOp> = Vec::new();
            let mut blocked: std::collections::HashSet<(usize, String, u64)> =
                std::collections::HashSet::new();
            let mut j = 0;
            while j < st.parked_ops.len() {
                let parked = &mut st.parked_ops[j];
                for (shard, path, stripe, _) in &landed {
                    parked.keys.remove(&(*shard, path.clone(), *stripe));
                }
                let held_up =
                    !parked.keys.is_empty() || parked.all_keys.iter().any(|k| blocked.contains(k));
                if held_up {
                    blocked.extend(parked.all_keys.iter().cloned());
                    j += 1;
                } else {
                    unparked.push(st.parked_ops.remove(j));
                }
            }
            for parked in unparked {
                self.telemetry.wakes.inc();
                self.telemetry
                    .park_ns
                    .record(now_ns.saturating_sub(parked.parked_at_ns));
                self.trace_park_event(now_ns, TraceKind::Wake, &parked.request);
                let spans = self.write_spans(&parked.op);
                let (start_ns, finish_ns) = self.device.dispatch(&parked.request, now_ns);
                let reply = self.execute(&parked.op, finish_ns);
                let completion = Completion {
                    request: parked.request,
                    start_ns,
                    finish_ns,
                };
                self.engine.complete(&completion);
                self.completions += 1;
                self.record_completion(&completion);
                self.note_durable_write(
                    spans,
                    ReadyReply {
                        request_id: parked.request_id,
                        reply,
                        completion,
                    },
                    ready,
                    now_ns,
                );
            }
        }

        let Some(st) = self.staging.as_mut() else {
            return;
        };

        // 1d. Scrub verifications whose capacity-tier read finished: judge
        //     the copy against the checksum recorded at drain write-back
        //     time. On a mismatch, repair from a clean resident burst copy;
        //     defer to the pending drain when a concurrent foreground write
        //     re-dirtied the extent (the generation guard — the scrubber
        //     must never push unflushed data into the tier); quarantine when
        //     no repair source remains. This runs *before* the eviction pass
        //     so a repair's burst-copy source cannot be reclaimed in the
        //     same tick it is needed.
        let mut i = 0;
        while i < st.inflight_scrubs.len() {
            if st.inflight_scrubs[i].0 <= now_ns {
                let (_, seq) = st.inflight_scrubs.swap_remove(i);
                let Some(target) = st.scrub.complete(seq) else {
                    continue;
                };
                match st
                    .backing
                    .read_back_with_checksum(&target.path, target.stripe)
                {
                    // Unlinked mid-scrub (delete-wins): nothing to verify.
                    None => {}
                    Some((data, stored)) => {
                        let bytes = data.len() as u64;
                        if extent_checksum(&data) == stored {
                            st.scrub.record_clean(bytes);
                        } else if self
                            .fs
                            .snapshot_extent_on(server, &target.path, target.stripe)
                            .is_some()
                        {
                            // The shard copy is dirty: a foreground write
                            // moved the generation mid-scrub, so the pending
                            // drain — which will rewrite copy and checksum
                            // together — owns the tier copy's next contents.
                            st.scrub.record_superseded(bytes);
                        } else if let Some(good) =
                            self.fs
                                .resident_extent_on(server, &target.path, target.stripe)
                        {
                            // A clean resident burst copy is byte-identical
                            // to what the tier should hold: repair. Charge
                            // the burst device the copy's read and the
                            // capacity tier the rewrite.
                            let meta = st.scrub.meta();
                            let cost = good.len().max(1) as u64;
                            let read = IoRequest::new(0, meta, OpKind::Read, cost, now_ns);
                            let (_, read_finish) = self.device.dispatch(&read, now_ns);
                            let write = IoRequest::new(0, meta, OpKind::Write, cost, read_finish);
                            st.backing_device.dispatch(&write, read_finish);
                            st.backing.write_back(&target.path, target.stripe, &good);
                            st.scrub.record_repaired(bytes);
                        } else {
                            // No repair source (evicted or never resident
                            // here): the tier copy was the only one, and it
                            // is damaged. Quarantine and surface it.
                            st.scrub
                                .record_quarantined(target.path, target.stripe, bytes);
                        }
                    }
                }
            } else {
                i += 1;
            }
        }

        // 1e. Shard migrations whose capacity-tier transfers finished: apply
        //     the plan against the sharded tier. The plan is re-derived at
        //     apply time from the *current* map — a migration admitted under
        //     a since-superseded map or for a since-unlinked extent degrades
        //     to `Superseded` (delete wins) — and every copy re-verifies
        //     against its write-back checksum, so a migration can heal an
        //     under-replicated range but never launder a corrupt extent: with
        //     no healthy replica it is refused (`Failed`) and the extent left
        //     in place for the scrubber to quarantine.
        let mut i = 0;
        while i < st.inflight_rebalances.len() {
            if st.inflight_rebalances[i].0 <= now_ns {
                let (_, seq) = st.inflight_rebalances.swap_remove(i);
                let Some(plan) = st.rebalance.complete(seq) else {
                    continue;
                };
                let Some(sharded) = st.backing.as_sharded() else {
                    continue;
                };
                match sharded.apply_migration(&plan) {
                    MigrationOutcome::Migrated {
                        bytes,
                        copies,
                        removed,
                    } => st.rebalance.record_migrated(bytes, copies, removed),
                    MigrationOutcome::Superseded => st.rebalance.record_superseded(),
                    MigrationOutcome::Failed => st.rebalance.record_failed(),
                }
            } else {
                i += 1;
            }
        }

        // 1f. Replicate copies whose replica-tier write finished: land the
        //     extent's *current* bytes — a copy admitted before a re-dirtying
        //     write still replicates the newest contents — and release any
        //     `sync` acks parked on the landed keys. The source is the
        //     resident burst extent when one exists, else the capacity
        //     tier's copy through the verified seam: unverifiable bytes are
        //     never replicated; the copy fails visibly instead.
        let mut replicated: Vec<(String, u64)> = Vec::new();
        let mut i = 0;
        while i < st.inflight_replicates.len() {
            if st.inflight_replicates[i].0 <= now_ns {
                let (_, seq) = st.inflight_replicates.swap_remove(i);
                let Some(target) = st.replicate.complete(seq) else {
                    continue;
                };
                // The extent lives on the shard its stripe hashes to, which
                // may not be the server that executed the write.
                let shard = self
                    .fs
                    .layout_of(&target.path)
                    .ok()
                    .and_then(|l| l.server_for_stripe(target.stripe))
                    .map(|id| id.0)
                    .unwrap_or(server);
                let data = self
                    .fs
                    .resident_extent_on(shard, &target.path, target.stripe)
                    .or_else(|| {
                        themis_stage::verified_read_back(
                            st.backing.as_ref(),
                            &target.path,
                            target.stripe,
                        )
                    });
                match data {
                    Some(data) => {
                        st.replica.write_back(&target.path, target.stripe, &data);
                        st.replicate.record_replicated(data.len() as u64);
                    }
                    // Unlinked mid-copy (delete wins) or no verifiable
                    // source: the debt retires without a replica.
                    None => st.replicate.record_failed(),
                }
                replicated.push(target.key());
            } else {
                i += 1;
            }
        }
        if !replicated.is_empty() {
            let mut j = 0;
            while j < st.pending_sync_acks.len() {
                for key in &replicated {
                    st.pending_sync_acks[j].1.remove(key);
                }
                if st.pending_sync_acks[j].1.is_empty() {
                    let (reply, _) = st.pending_sync_acks.swap_remove(j);
                    st.replicate.record_sync_released();
                    ready.push(reply);
                } else {
                    j += 1;
                }
            }
        }

        // 2. Watermark eviction: reclaim clean extents down to the low
        //    watermark. Dirty extents are never touched.
        let cfg = *st.pipeline.config();
        if self.fs.resident_bytes_on(server) > cfg.high_watermark_bytes {
            let evicted = self.fs.evict_clean_on(server, cfg.low_watermark_bytes);
            let bytes: u64 = evicted.iter().map(|(_, _, len)| len).sum();
            if !evicted.is_empty() {
                st.pipeline.record_eviction(evicted.len() as u64, bytes);
            }
        }

        // 3. Background drain admission: synthesize policy-arbitrated drain
        //    requests for dirty extents, up to the pipelining depth.
        let capacity = st.pipeline.admission_capacity();
        if capacity > 0 {
            let candidates =
                self.fs
                    .dirty_extents_on(server, capacity, st.pipeline.inflight_keys());
            for (path, stripe, generation, len) in candidates {
                let seq = self.next_seq;
                self.next_seq += 1;
                let request = st
                    .pipeline
                    .admit(seq, path, stripe, generation, len.max(1), now_ns);
                self.engine.admit(request);
            }
        }

        // 3b. Restore admission: queued restore targets become policy-
        //     arbitrated restore requests, up to the pipelining depth.
        self.admit_restores(now_ns);

        // 3c. Scrub admission: when a pass is due (continuous scrubbing or
        //     an explicit `Scrub` demand), walk the capacity tier's extents
        //     this server owns and synthesize policy-arbitrated verification
        //     requests — then resolve any deferred `Scrub` acknowledgements
        //     whose pass just completed (including the trivially complete
        //     pass over an empty tier).
        self.admit_scrubs(now_ns);
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        if let Some(pass) = st.scrub.finish_pass_if_idle(now_ns) {
            let status = st.scrub.status();
            let mut j = 0;
            while j < st.pending_scrubs.len() {
                if st.pending_scrubs[j].1 <= pass {
                    let (request_id, _) = st.pending_scrubs.swap_remove(j);
                    self.stage_replies.push(StageReady {
                        request_id,
                        reply: StageReply::Scrub(status.clone()),
                    });
                } else {
                    j += 1;
                }
            }
        }

        // 3d. Rebalance admission: when the sharded tier's map generation
        //     moved past the last converged one (or a heal pass was forced),
        //     walk the misplaced extents this server's shard owns and
        //     synthesize policy-arbitrated migration requests — then close
        //     the pass once the cursor and the inflight set both drain.
        self.admit_rebalances(now_ns);
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        st.rebalance.finish_pass_if_idle();

        // 3e. Replicate admission: queued replica debt becomes policy-
        //     arbitrated copy requests, up to the pipelining depth.
        self.admit_replicates(now_ns);
        let Some(st) = self.staging.as_mut() else {
            return;
        };

        // 4. Flushes whose path became clean locally.
        let mut j = 0;
        while j < st.pending_flushes.len() {
            let path = &st.pending_flushes[j].1;
            let busy = self.fs.path_dirty_on(server, path).unwrap_or(false)
                || st.pipeline.has_inflight_for(path);
            if busy {
                j += 1;
            } else {
                let (request_id, path) = st.pending_flushes.swap_remove(j);
                let backing_bytes = st.backing.bytes_for(&path);
                self.stage_replies.push(StageReady {
                    request_id,
                    reply: StageReply::Flushed { backing_bytes },
                });
            }
        }
    }

    /// Feeds queued restore targets to the policy engine, up to the restore
    /// pipeline's depth.
    fn admit_restores(&mut self, now_ns: u64) {
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        while let Some(request) = st.restore.admit_next(self.next_seq, now_ns) {
            self.next_seq += 1;
            self.engine.admit(request);
        }
    }

    /// Feeds due scrub verifications to the policy engine, up to the scrub
    /// pipeline's depth. Each server verifies exactly the tier extents whose
    /// stripes its shard owns, so a multi-server deployment scrubs the
    /// shared tier once; orphaned extents (no live layout) fall to server 0.
    fn admit_scrubs(&mut self, now_ns: u64) {
        let fs = self.fs.clone();
        let server = self.server_index;
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        let owns = |path: &str, stripe: u64| match fs.layout_of(path) {
            Ok(layout) => layout.server_for_stripe(stripe).map(|id| id.0) == Some(server),
            Err(_) => server == 0,
        };
        while let Some(request) =
            st.scrub
                .admit_next(self.next_seq, now_ns, st.backing.as_ref(), owns)
        {
            self.next_seq += 1;
            self.engine.admit(request);
        }
    }

    /// Feeds due shard migrations to the policy engine, up to the rebalance
    /// pipeline's depth. The same ownership split as scrubbing: each server
    /// migrates exactly the tier extents whose stripes its layout shard
    /// owns, so a multi-server deployment re-places the shared tier once;
    /// orphaned extents fall to server 0. A no-op on an unsharded tier.
    fn admit_rebalances(&mut self, now_ns: u64) {
        let fs = self.fs.clone();
        let server = self.server_index;
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        let Some(sharded) = st.backing.as_sharded() else {
            return;
        };
        let owns = |path: &str, stripe: u64| match fs.layout_of(path) {
            Ok(layout) => layout.server_for_stripe(stripe).map(|id| id.0) == Some(server),
            Err(_) => server == 0,
        };
        while let Some(request) = st
            .rebalance
            .admit_next(self.next_seq, now_ns, sharded, owns)
        {
            self.next_seq += 1;
            self.engine.admit(request);
        }
    }

    /// Feeds queued replicate copies to the policy engine, up to the
    /// replicate pipeline's depth.
    fn admit_replicates(&mut self, now_ns: u64) {
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        while let Some(request) = st.replicate.admit_next(self.next_seq, now_ns) {
            self.next_seq += 1;
            self.engine.admit(request);
        }
    }

    /// The `(stripe, bytes-written-into-it)` spans a write operation dirties,
    /// with the normalized target path — `None` for non-writes and writes the
    /// layout cannot resolve. Cursor writes read the descriptor's *current*
    /// cursor, so this must run before the write executes.
    fn write_spans(&self, op: &FsOp) -> Option<(String, Vec<(u64, u64)>)> {
        self.staging.as_ref()?;
        let (path, offset, len) = match op {
            FsOp::WriteAt { path, offset, data } => (path.clone(), *offset, data.len() as u64),
            FsOp::Write { fd, data } => {
                let path = self.fs.fd_path(*fd).ok()?;
                // lseek(0, CUR) reads the cursor without moving it.
                let cursor = self.fs.lseek(*fd, 0, Whence::Cur).ok()?;
                (path, cursor, data.len() as u64)
            }
            _ => return None,
        };
        if len == 0 {
            return None;
        }
        let path = themis_fs::path::normalize(&path).ok()?;
        let stripe_size = self.fs.layout_of(&path).ok()?.config.stripe_size.max(1);
        // Saturating end, as in `restore_targets_for`: never overflow on a
        // client-controlled offset near u64::MAX.
        let end = offset.saturating_add(len - 1);
        let mut spans = Vec::new();
        for stripe in offset / stripe_size..=end / stripe_size {
            let extent_start = stripe * stripe_size;
            let extent_end = extent_start.saturating_add(stripe_size);
            let lo = offset.max(extent_start);
            let hi = offset.saturating_add(len).min(extent_end);
            spans.push((stripe, hi.saturating_sub(lo)));
        }
        Some((path, spans))
    }

    /// Records the replica debt an executed foreground write created under
    /// the durability policy, then delivers the reply — immediately for
    /// `local_only`/`local_plus_one` writes (and every non-write), or parked
    /// on the replicate pipeline for `sync` writes, whose acks wait until
    /// the replicas of every stripe they dirtied land
    /// ([`ServerCore::stage_tick`] releases them).
    fn note_durable_write(
        &mut self,
        spans: Option<(String, Vec<(u64, u64)>)>,
        reply: ReadyReply,
        ready: &mut Vec<ReadyReply>,
        now_ns: u64,
    ) {
        let meta = reply.completion.request.meta;
        let deliver_now = matches!(reply.reply, FsReply::Error(_))
            || spans.is_none()
            || self
                .staging
                .as_ref()
                .is_none_or(|st| !st.replicate.enabled() || st.durability.is_none());
        if deliver_now {
            ready.push(reply);
            return;
        }
        // All checked non-None/enabled above; destructure without unwrap.
        let Some((path, spans)) = spans else {
            ready.push(reply);
            return;
        };
        let Some(st) = self.staging.as_mut() else {
            ready.push(reply);
            return;
        };
        let Some(spec) = st.durability.as_ref() else {
            ready.push(reply);
            return;
        };
        let mode = spec.resolve(meta.job, meta.user, &path);
        if !mode.replicates() {
            ready.push(reply);
            return;
        }
        for (stripe, bytes) in &spans {
            st.replicate.note_write(path.clone(), *stripe, *bytes, mode);
        }
        if mode.defers_ack() {
            // `sync`: the client must never observe a success the replica
            // tier could still lose — park the ack until every replica of
            // the stripes this write dirtied lands.
            let keys = spans.iter().map(|(s, _)| (path.clone(), *s)).collect();
            st.replicate.record_sync_deferred();
            st.pending_sync_acks.push((reply, keys));
        } else {
            ready.push(reply);
        }
        // Give the engine the fresh copy work immediately so it competes in
        // this same poll.
        self.admit_replicates(now_ns);
    }

    /// The evicted extents a foreground operation's byte range touches, as
    /// restore targets (`pin_dirty` for writes — the restore must pin
    /// against the evictor until the write lands; clean for reads). Empty
    /// when staging is disabled or every target extent is resident.
    ///
    /// Only *offset-based* operations (`ReadAt`/`WriteAt`) are eligible:
    /// parking a cursor-based `Read`/`Write` would let a later request on
    /// the same descriptor execute first and move the cursor out from under
    /// the parked one. Cursor I/O of evicted data instead takes the
    /// synchronous fallback inside [`ServerCore::execute`], which preserves
    /// per-descriptor order.
    fn restore_targets_for(&self, op: &FsOp) -> Vec<RestoreTarget> {
        if self.staging.is_none() {
            return Vec::new();
        }
        // O(servers) early-out: with nothing evicted anywhere — the common
        // all-resident case on the hot dispatch path — skip the per-request
        // path/layout/residency work entirely.
        if (0..self.fs.server_count()).all(|s| self.fs.evicted_count_on(s) == 0) {
            return Vec::new();
        }
        let (path, offset, len, pin_dirty) = match op {
            FsOp::WriteAt { path, offset, data } => {
                (path.clone(), *offset, data.len() as u64, true)
            }
            FsOp::ReadAt { path, offset, len } => (path.clone(), *offset, *len, false),
            _ => return Vec::new(),
        };
        if len == 0 {
            return Vec::new();
        }
        let Ok(path) = themis_fs::path::normalize(&path) else {
            return Vec::new();
        };
        let Ok(layout) = self.fs.layout_of(&path) else {
            return Vec::new();
        };
        // Reads are clamped at EOF (like the read itself), bounding the
        // stripe walk for oversized request lengths.
        let len = if pin_dirty {
            len
        } else {
            let Ok(stat) = self.fs.stat(&path) else {
                return Vec::new();
            };
            if offset >= stat.size {
                return Vec::new();
            }
            len.min(stat.size - offset)
        };
        let stripe_size = layout.config.stripe_size.max(1);
        // Saturating end: a client-controlled WriteAt near u64::MAX must
        // not overflow the stripe arithmetic (the write itself will fail
        // downstream; the pre-check must stay panic-free). `len >= 1` here.
        let stripes = offset / stripe_size..=offset.saturating_add(len - 1) / stripe_size;
        let mut targets = Vec::new();
        // Evicted state lives on the shard each stripe hashes to; collect
        // each involved shard's evicted set once.
        let mut shards: Vec<usize> = stripes
            .clone()
            .filter_map(|s| layout.server_for_stripe(s).map(|id| id.0))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        for shard in shards {
            for (p, stripe, bytes) in self.fs.evicted_extents_on(shard, Some(&path)) {
                if stripes.contains(&stripe)
                    && layout.server_for_stripe(stripe).map(|id| id.0) == Some(shard)
                {
                    targets.push(RestoreTarget {
                        shard,
                        path: p,
                        stripe,
                        bytes,
                        pin_dirty,
                    });
                }
            }
        }
        targets
    }

    /// The `(shard, path, stripe)` extent keys an offset-based foreground
    /// operation targets — resident or evicted. These order foreground
    /// execution against parked operations: a later op overlapping any key
    /// an earlier parked op targets must wait behind it (admission order)
    /// even when its own extents are all resident. Empty for non-offset ops
    /// (cursor I/O keeps per-descriptor order by never parking) and when
    /// staging is disabled.
    fn target_extent_keys(&self, op: &FsOp) -> std::collections::HashSet<(usize, String, u64)> {
        let mut keys = std::collections::HashSet::new();
        if self.staging.is_none() {
            return keys;
        }
        let (path, offset, len, is_write) = match op {
            FsOp::WriteAt { path, offset, data } => {
                (path.clone(), *offset, data.len() as u64, true)
            }
            FsOp::ReadAt { path, offset, len } => (path.clone(), *offset, *len, false),
            _ => return keys,
        };
        if len == 0 {
            return keys;
        }
        let Ok(path) = themis_fs::path::normalize(&path) else {
            return keys;
        };
        let Ok(layout) = self.fs.layout_of(&path) else {
            return keys;
        };
        // Reads are clamped at EOF, like `restore_targets_for`.
        let len = if is_write {
            len
        } else {
            let Ok(stat) = self.fs.stat(&path) else {
                return keys;
            };
            if offset >= stat.size {
                return keys;
            }
            len.min(stat.size - offset)
        };
        let stripe_size = layout.config.stripe_size.max(1);
        // Saturating end, as in `restore_targets_for`: never overflow on a
        // client-controlled offset near u64::MAX.
        for stripe in offset / stripe_size..=offset.saturating_add(len - 1) / stripe_size {
            if let Some(id) = layout.server_for_stripe(stripe) {
                keys.insert((id.0, path.clone(), stripe));
            }
        }
        keys
    }

    /// Parks a foreground request behind policy-admitted restores when its
    /// target extents are evicted. Returns whether the request was parked
    /// (the caller must not execute it).
    fn park_if_needs_restore(
        &mut self,
        request_id: u64,
        request: &IoRequest,
        op: &FsOp,
        now_ns: u64,
    ) -> bool {
        let targets = self.restore_targets_for(op);
        if targets.is_empty() {
            return false;
        }
        // Conflict tracking covers the op's *full* extent range, not just
        // the evicted keys it queues restores for: a stripe of this op that
        // is resident today is still written when the op finally executes,
        // so a later op touching it must order behind this one.
        let mut all_keys = self.target_extent_keys(op);
        let Some(st) = self.staging.as_mut() else {
            return false;
        };
        let mut keys = std::collections::HashSet::new();
        for target in targets {
            keys.insert(target.key());
            st.restore.request(target);
        }
        all_keys.extend(keys.iter().cloned());
        st.parked_ops.push(ParkedOp {
            request_id,
            request: *request,
            op: op.clone(),
            parked_at_ns: now_ns,
            all_keys,
            keys,
        });
        self.telemetry.parked_ops.inc();
        self.trace_park_event(now_ns, TraceKind::Park, request);
        // Give the engine the new restore work immediately so it competes in
        // this same poll.
        self.admit_restores(now_ns);
        true
    }

    /// Parks a foreground request behind *earlier* parked operations whose
    /// target extents overlap its own, even when every extent it touches is
    /// resident — the other half of the admission-order guarantee
    /// ([`ParkedOp::all_keys`]): without it, a later write needing no
    /// restore executes immediately, and the earlier parked write — which
    /// landed in the queue first but is still waiting on its restores —
    /// executes *after* it and silently clobbers its bytes. The blocked op
    /// queues no restores of its own; it wakes (strictly after the ops it
    /// is ordered behind) in the same restore-landing pass that releases
    /// them. Returns whether the request was parked.
    fn park_if_overlaps_parked(
        &mut self,
        request_id: u64,
        request: &IoRequest,
        op: &FsOp,
        now_ns: u64,
    ) -> bool {
        if self
            .staging
            .as_ref()
            .is_none_or(|st| st.parked_ops.is_empty())
        {
            return false;
        }
        let keys = self.target_extent_keys(op);
        if keys.is_empty() {
            return false;
        }
        let Some(st) = self.staging.as_mut() else {
            return false;
        };
        if !st
            .parked_ops
            .iter()
            .any(|p| p.all_keys.iter().any(|k| keys.contains(k)))
        {
            return false;
        }
        st.parked_ops.push(ParkedOp {
            request_id,
            request: *request,
            op: op.clone(),
            parked_at_ns: now_ns,
            keys: std::collections::HashSet::new(),
            all_keys: keys,
        });
        self.telemetry.parked_ops.inc();
        self.trace_park_event(now_ns, TraceKind::Park, request);
        true
    }

    /// Executes a restore request the engine released: the burst-buffer
    /// device is charged the extent write (the slot the engine granted) and
    /// the capacity tier is charged the read in parallel; the extent lands
    /// in the shard when both finish (in a later [`ServerCore::poll`]).
    fn execute_restore(&mut self, request: &IoRequest, now_ns: u64) {
        let (_, burst_finish) = self.device.dispatch(request, now_ns);
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        let Some(target) = st.restore.inflight(request.seq) else {
            return;
        };
        let read = IoRequest::new(
            request.seq,
            st.restore.meta(),
            OpKind::Read,
            target.bytes.max(1),
            now_ns,
        );
        let (_, backing_finish) = st.backing_device.dispatch(&read, now_ns);
        st.inflight_restores
            .push((burst_finish.max(backing_finish), request.seq));
    }

    /// Executes a scrub request the engine released: the burst-buffer
    /// device is charged the verification's service slot (the slot the
    /// engine granted, which is what keeps scrubbing bounded by its
    /// foreground:scrub weight) and the capacity tier is charged the read
    /// that actually fetches the copy, in parallel. The checksum is judged
    /// when both finish (in a later [`ServerCore::poll`]).
    fn execute_scrub(&mut self, request: &IoRequest, now_ns: u64) {
        let (_, burst_finish) = self.device.dispatch(request, now_ns);
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        let Some(target) = st.scrub.inflight(request.seq) else {
            return;
        };
        let read = IoRequest::new(
            request.seq,
            st.scrub.meta(),
            OpKind::Read,
            target.bytes.max(1),
            now_ns,
        );
        let (_, backing_finish) = st.backing_device.dispatch(&read, now_ns);
        st.inflight_scrubs
            .push((burst_finish.max(backing_finish), request.seq));
    }

    /// Executes a shard migration the engine released: the burst-buffer
    /// device is charged the migration's service slot (what keeps
    /// rebalancing bounded by its foreground:rebalance weight) and the
    /// capacity tier is charged the verified source read followed by the
    /// replica writes — one write per copy the plan places — at the tier's
    /// own speed. The migration is applied when the transfers finish (in a
    /// later [`ServerCore::poll`]).
    fn execute_rebalance(&mut self, request: &IoRequest, now_ns: u64) {
        let (_, burst_finish) = self.device.dispatch(request, now_ns);
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        let Some(plan) = st.rebalance.inflight(request.seq) else {
            return;
        };
        let meta = st.rebalance.meta();
        let bytes = plan.bytes.max(1);
        let copies = plan.copy_to.len().max(1) as u64;
        let read = IoRequest::new(request.seq, meta, OpKind::Read, bytes, now_ns);
        let (_, read_finish) = st.backing_device.dispatch(&read, now_ns);
        let write = IoRequest::new(
            request.seq,
            meta,
            OpKind::Write,
            bytes * copies,
            read_finish,
        );
        let (_, write_finish) = st.backing_device.dispatch(&write, read_finish);
        st.inflight_rebalances
            .push((burst_finish.max(write_finish), request.seq));
    }

    /// Executes a replicate copy the engine released: the burst-buffer
    /// device is charged the source read (the slot the engine granted —
    /// what keeps replication bounded by its foreground:replicate weight)
    /// and the replica tier is charged the copy's write at its own speed,
    /// sequenced after the read. The copy's bytes are fetched when the
    /// transfers finish (in a later [`ServerCore::poll`]), so a re-dirtied
    /// extent replicates its latest contents.
    fn execute_replicate(&mut self, request: &IoRequest, now_ns: u64) {
        let (_, burst_finish) = self.device.dispatch(request, now_ns);
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        let Some(target) = st.replicate.inflight(request.seq) else {
            return;
        };
        let write = IoRequest::new(
            request.seq,
            st.replicate.meta(),
            OpKind::Write,
            target.bytes.max(1),
            burst_finish,
        );
        let (_, replica_finish) = st.replica_device.dispatch(&write, burst_finish);
        st.inflight_replicates.push((replica_finish, request.seq));
    }

    /// Executes a drain request the engine released: read the extent
    /// snapshot off the burst-buffer device, then write it to the capacity
    /// tier at the tier's own speed. The extent is marked clean when the
    /// capacity-tier write completes (in a later [`ServerCore::poll`]).
    fn execute_drain(&mut self, request: &IoRequest, now_ns: u64) {
        let (_, finish_ns) = self.device.dispatch(request, now_ns);
        let server = self.server_index;
        let fs = self.fs.clone();
        let Some(st) = self.staging.as_mut() else {
            return;
        };
        let Some(d) = st.pipeline.inflight(request.seq) else {
            return;
        };
        // Snapshot at service time — the extent may have been overwritten
        // (or drained and unlinked) since admission.
        match self.fs.snapshot_extent_on(server, &d.path, d.stripe) {
            Some((data, generation)) => {
                // Delete-wins: a peer's unlink or truncate can land between
                // the snapshot above and this write-back; the guarded write
                // re-probes afterwards so the shared tier never keeps a
                // stale copy. The probe checks *size*, not bare existence —
                // a truncated path still exists, but its size drops below
                // the drained stripe's start, which is how the probe tells
                // "this extent can no longer legitimately exist" for both
                // races.
                let path = d.path.clone();
                let stripe_start = d.stripe
                    * self
                        .fs
                        .layout_of(&path)
                        .map(|l| l.config.stripe_size.max(1))
                        .unwrap_or(1);
                let stripe = d.stripe;
                let kept = write_back_guarded(st.backing.as_ref(), &path, stripe, &data, || {
                    fs.stat(&path).is_ok_and(|s| s.size > stripe_start)
                });
                if !kept {
                    st.pipeline.complete(request.seq);
                    return;
                }
                // The write-back recomputed the extent's checksum, so a
                // previously quarantined copy is sound again.
                st.scrub.unquarantine(&path, stripe);
                let write = IoRequest::new(
                    request.seq,
                    st.pipeline.meta(),
                    OpKind::Write,
                    data.len() as u64,
                    finish_ns,
                );
                let (_, backing_finish) = st.backing_device.dispatch(&write, finish_ns);
                st.inflight_backing
                    .push((backing_finish, request.seq, generation));
            }
            None => {
                // Nothing dirty any more (unlinked or already clean): the
                // drain is a no-op.
                st.pipeline.complete(request.seq);
            }
        }
    }

    /// Executes one file system operation (the data path of §4.3). With
    /// staging enabled, foreground I/O never observes staged-out data as
    /// zeros or errors: operations targeting evicted extents are normally
    /// parked behind policy-admitted restores before execution
    /// ([`ServerCore::park_if_needs_restore`]), so by the time this runs the
    /// extents are resident. The read-through fetcher and the synchronous
    /// restore below remain as the fallback for the cross-server race —
    /// a peer evicting a shared-shard extent after the parking pre-check.
    fn execute(&mut self, op: &FsOp, now_ns: u64) -> FsReply {
        match self.try_execute(op, now_ns) {
            Ok(reply) => reply,
            Err(FsError::NotResident(path)) if self.staging.is_some() => {
                let targets = self.write_target_stripes(op);
                let shards = 0..self.fs.server_count();
                self.restore_extents(shards, &path, now_ns, targets.as_ref());
                match self.try_execute(op, now_ns) {
                    Ok(reply) => reply,
                    Err(e) => FsReply::Error(e.to_string()),
                }
            }
            Err(e) => FsReply::Error(e.to_string()),
        }
    }

    /// The stripes a write operation targets (`None` for non-writes) — the
    /// extents that must be pinned dirty by a restore-for-write.
    fn write_target_stripes(&self, op: &FsOp) -> Option<std::collections::HashSet<u64>> {
        let (path, offset, len) = match op {
            FsOp::WriteAt { path, offset, data } => (path.clone(), *offset, data.len() as u64),
            FsOp::Write { fd, data } => {
                let path = self.fs.fd_path(*fd).ok()?;
                // lseek(0, CUR) reads the cursor without moving it.
                let cursor = self.fs.lseek(*fd, 0, Whence::Cur).ok()?;
                (path, cursor, data.len() as u64)
            }
            _ => return None,
        };
        if len == 0 {
            return Some(std::collections::HashSet::new());
        }
        let stripe_size = self.fs.layout_of(&path).ok()?.config.stripe_size.max(1);
        // Saturating end, as in `restore_targets_for`: never overflow on a
        // client-controlled offset near u64::MAX.
        Some((offset / stripe_size..=offset.saturating_add(len - 1) / stripe_size).collect())
    }

    /// Reads up to `len` bytes, serving evicted extents straight from the
    /// capacity tier (read-through) when staging is enabled. The fetched
    /// bytes are charged to the capacity-tier device's timeline (occupying
    /// its workers); as a modelling simplification the *reply's* completion
    /// time still comes from the burst-buffer dispatch alone, so per-request
    /// latency of staged reads is optimistic — capacity-tier congestion
    /// shows up in the backing timeline's utilisation, not in reply times.
    fn read_through(
        &mut self,
        target: ReadTarget<'_>,
        len: u64,
        now_ns: u64,
    ) -> Result<Vec<u8>, FsError> {
        let Some(st) = self.staging.as_mut() else {
            return match target {
                ReadTarget::Fd(fd) => self.fs.read(fd, len),
                ReadTarget::At(path, offset) => self.fs.read_at(path, offset, len),
            };
        };
        let backing = Arc::clone(&st.backing);
        let fetched = std::cell::Cell::new(0u64);
        let fetch = |p: &str, stripe: u64| {
            // Verified fetch: serving an unverified tier copy would hand the
            // client corrupt bytes; refusing surfaces NotResident instead.
            let data = themis_stage::verified_read_back(backing.as_ref(), p, stripe);
            if let Some(d) = &data {
                fetched.set(fetched.get() + d.len() as u64);
            }
            data
        };
        let result = match target {
            ReadTarget::Fd(fd) => self.fs.read_with(fd, len, &fetch),
            ReadTarget::At(path, offset) => self.fs.read_at_with(path, offset, len, &fetch),
        };
        if fetched.get() > 0 {
            let read = IoRequest::new(0, st.pipeline.meta(), OpKind::Read, fetched.get(), now_ns);
            st.backing_device.dispatch(&read, now_ns);
        }
        // Residency accounting: a read that pulled anything through the
        // capacity tier is a miss op (the fetched bytes count as misses, the
        // remainder of the returned payload was resident); a read served
        // entirely from the shard is a hit op.
        if let Ok(data) = &result {
            let fetched = fetched.get();
            if fetched > 0 {
                self.telemetry.residency_miss_ops.inc();
                self.telemetry.residency_miss_bytes.add(fetched);
                let resident = (data.len() as u64).saturating_sub(fetched);
                if resident > 0 {
                    self.telemetry.residency_hit_bytes.add(resident);
                }
            } else {
                self.telemetry.residency_hit_ops.inc();
                self.telemetry.residency_hit_bytes.add(data.len() as u64);
            }
        }
        result
    }

    fn try_execute(&mut self, op: &FsOp, now_ns: u64) -> Result<FsReply, FsError> {
        match op {
            FsOp::Open {
                path,
                create,
                truncate,
                append,
            } => {
                let fd = self.fs.open(
                    path,
                    OpenFlags {
                        create: *create,
                        truncate: *truncate,
                        append: *append,
                    },
                    now_ns,
                )?;
                if *truncate {
                    self.drop_backing_copies(path);
                }
                Ok(FsReply::Fd(fd))
            }
            FsOp::Close { fd } => self.fs.close(*fd).map(|_| FsReply::Ok),
            FsOp::Write { fd, data } => self.fs.write(*fd, data, now_ns).map(FsReply::Count),
            FsOp::WriteAt { path, offset, data } => self
                .fs
                .write_at(path, *offset, data, now_ns)
                .map(FsReply::Count),
            FsOp::Read { fd, len } => self
                .read_through(ReadTarget::Fd(*fd), *len, now_ns)
                .map(FsReply::Data),
            FsOp::ReadAt { path, offset, len } => self
                .read_through(ReadTarget::At(path, *offset), *len, now_ns)
                .map(FsReply::Data),
            FsOp::Seek { fd, offset, whence } => {
                let whence = match whence {
                    0 => Whence::Set,
                    1 => Whence::Cur,
                    _ => Whence::End,
                };
                self.fs.lseek(*fd, *offset, whence).map(FsReply::Count)
            }
            FsOp::Stat { path } => self.fs.stat(path).map(FsReply::Stat),
            FsOp::Mkdir { path } => self.fs.mkdir_all(path, now_ns).map(|_| FsReply::Ok),
            FsOp::Readdir { path } => self.fs.readdir(path).map(FsReply::Entries),
            FsOp::Unlink { path } => {
                self.fs.unlink(path, now_ns)?;
                self.drop_backing_copies(path);
                Ok(FsReply::Ok)
            }
            FsOp::CreateStriped { path, stripe } => self
                .fs
                .create_striped(path, *stripe, now_ns)
                .map(|_| FsReply::Ok),
        }
    }

    /// Drops the capacity tier's copies of a path that was unlinked or
    /// truncated, so stale snapshots cannot be staged back in — and lifts
    /// any scrub quarantine on them (the damaged copies are gone).
    fn drop_backing_copies(&mut self, path: &str) {
        if let (Some(st), Ok(p)) = (self.staging.as_mut(), themis_fs::path::normalize(path)) {
            st.backing.remove_path(&p);
            // Delete wins on the replica tier too: a stale durability copy
            // of an unlinked path must not outlive the data.
            st.replica.remove_path(&p);
            st.scrub.unquarantine_path(&p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_core::entity::JobId;

    fn server(policy: Policy) -> ServerCore {
        let fs = BurstBufferFs::new(1);
        ServerCore::new(
            0,
            fs,
            ServerConfig {
                algorithm: Algorithm::Themis(policy),
                ..ServerConfig::default()
            },
        )
    }

    fn meta(job: u64, nodes: u32) -> JobMeta {
        JobMeta::new(job, job as u32, 1u32, nodes)
    }

    #[test]
    fn submit_poll_executes_against_fs() {
        let mut s = server(Policy::size_fair());
        let m = meta(1, 4);
        s.heartbeat(m, 0);
        s.submit(
            1,
            m,
            FsOp::Open {
                path: "/out".into(),
                create: true,
                truncate: true,
                append: false,
            },
            0,
        );
        let replies = s.poll(0);
        assert_eq!(replies.len(), 1);
        let fd = match replies[0].reply {
            FsReply::Fd(fd) => fd,
            ref other => panic!("unexpected reply {other:?}"),
        };
        s.submit(
            2,
            m,
            FsOp::Write {
                fd,
                data: vec![7u8; 4096],
            },
            1_000,
        );
        s.submit(3, m, FsOp::Read { fd, len: 4096 }, 1_000);
        s.submit(
            4,
            m,
            FsOp::Seek {
                fd,
                offset: 0,
                whence: 0,
            },
            1_000,
        );
        s.submit(5, m, FsOp::Read { fd, len: 4096 }, 1_000);
        let mut replies = s.poll(1_000);
        // Workers may still be busy with earlier requests at t=1 µs; keep
        // polling as (virtual) time advances until all four complete.
        let mut t = 1_000;
        while replies.len() < 4 {
            t += 10_000;
            replies.extend(s.poll(t));
            assert!(t < 1_000_000_000, "requests never completed");
        }
        assert_eq!(replies.len(), 4);
        match &replies[3].reply {
            FsReply::Data(d) => assert_eq!(d, &vec![7u8; 4096]),
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(s.completions(), 5);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn errors_travel_back_as_replies() {
        let mut s = server(Policy::job_fair());
        let m = meta(1, 1);
        s.submit(
            9,
            m,
            FsOp::Stat {
                path: "/missing".into(),
            },
            0,
        );
        let replies = s.poll(0);
        assert!(matches!(replies[0].reply, FsReply::Error(_)));
    }

    #[test]
    fn size_fair_shares_follow_heartbeats() {
        let mut s = server(Policy::size_fair());
        s.heartbeat(meta(1, 3), 0);
        s.heartbeat(meta(2, 1), 0);
        let shares = s.shares();
        assert!((shares.share(JobId(1)) - 0.75).abs() < 1e-9);
        s.client_bye(meta(1, 3), 10);
        assert!((s.shares().share(JobId(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expire_marks_silent_jobs_inactive() {
        let fs = BurstBufferFs::new(1);
        let mut s = ServerCore::new(
            0,
            fs,
            ServerConfig {
                heartbeat_timeout_ns: 1_000,
                ..ServerConfig::default()
            },
        );
        s.heartbeat(meta(1, 2), 0);
        s.heartbeat(meta(2, 2), 0);
        // Job 2 keeps beating, job 1 goes silent.
        s.heartbeat(meta(2, 2), 10_000);
        s.expire_jobs(10_000);
        let shares = s.shares();
        assert_eq!(shares.share(JobId(1)), 0.0);
        assert!((shares.share(JobId(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lambda_sync_merges_peer_views() {
        let mut a = server(Policy::size_fair());
        let mut b = server(Policy::size_fair());
        a.heartbeat(meta(1, 16), 0);
        a.heartbeat(meta(2, 8), 0);
        b.heartbeat(meta(1, 16), 0);
        b.heartbeat(meta(3, 8), 0);
        assert!((a.shares().share(JobId(1)) - 2.0 / 3.0).abs() < 1e-9);
        assert!(a.sync_due(a.lambda_interval_ns()));
        let tb = b.local_table();
        let ta = a.local_table();
        a.absorb_peer_tables([&tb], 500_000_000);
        b.absorb_peer_tables([&ta], 500_000_000);
        assert!((a.shares().share(JobId(1)) - 0.5).abs() < 1e-9);
        assert!((b.shares().share(JobId(1)) - 0.5).abs() < 1e-9);
        assert!(!a.sync_due(600_000_000));
    }

    #[test]
    fn policy_change_applies_immediately() {
        let mut s = server(Policy::size_fair());
        s.heartbeat(meta(1, 4), 0);
        s.heartbeat(meta(2, 1), 0);
        assert!((s.shares().share(JobId(1)) - 0.8).abs() < 1e-9);
        s.set_policy(Policy::job_fair()).unwrap();
        assert!((s.shares().share(JobId(1)) - 0.5).abs() < 1e-9);
        assert_eq!(s.policy(), &Policy::job_fair());
    }

    #[test]
    fn set_policy_rejected_on_fixed_algorithm_engines() {
        for algorithm in [
            Algorithm::Fifo,
            Algorithm::Gift(themis_baselines::GiftConfig::default()),
            Algorithm::Tbf(themis_baselines::TbfConfig::default()),
        ] {
            let fs = BurstBufferFs::new(1);
            let mut s = ServerCore::new(
                0,
                fs,
                ServerConfig {
                    algorithm: algorithm.clone(),
                    ..ServerConfig::default()
                },
            );
            let before = s.policy().clone();
            let err = s.set_policy(Policy::size_fair()).unwrap_err();
            assert!(
                matches!(err, PolicyError::UnsupportedEngine(_)),
                "{algorithm:?}: {err}"
            );
            // Nothing changed: epoch still 0, previous policy still in force.
            assert_eq!(s.policy_epoch(), 0);
            assert_eq!(s.policy(), &before);
        }
    }

    fn staged_server(staging: StagingConfig) -> ServerCore {
        let fs = BurstBufferFs::new(1);
        ServerCore::new(
            0,
            fs,
            ServerConfig {
                algorithm: Algorithm::Themis(Policy::size_fair()),
                staging: Some(staging),
                ..ServerConfig::default()
            },
        )
    }

    fn fast_staging() -> StagingConfig {
        StagingConfig {
            // A fast backing tier so tests drain in microseconds of virtual
            // time.
            backing_device: DeviceConfig::default(),
            drain: themis_stage::DrainConfig {
                high_watermark_bytes: 1 << 30,
                low_watermark_bytes: 1 << 29,
                ..themis_stage::DrainConfig::default()
            },
            sharding: None,
            durability: None,
        }
    }

    /// Polls until the staging pipeline reports clean, returning the virtual
    /// time reached.
    fn poll_until_clean(s: &mut ServerCore, mut t: u64) -> u64 {
        loop {
            s.poll(t);
            let status = s.drain_status_snapshot().expect("staging enabled");
            if status.is_clean() {
                return t;
            }
            t += 100_000;
            assert!(t < 60_000_000_000, "drain never completed");
        }
    }

    fn write_file(s: &mut ServerCore, path: &str, bytes: usize, t: u64) {
        s.submit(
            9000,
            meta(1, 1),
            FsOp::Open {
                path: path.into(),
                create: true,
                truncate: false,
                append: false,
            },
            t,
        );
        let fd = loop {
            let replies = s.poll(t);
            if let Some(r) = replies.iter().find(|r| r.request_id == 9000) {
                match r.reply {
                    FsReply::Fd(fd) => break fd,
                    ref other => panic!("unexpected {other:?}"),
                }
            }
        };
        s.submit(
            9001,
            meta(1, 1),
            FsOp::Write {
                fd,
                data: vec![0xAB; bytes],
            },
            t,
        );
        let mut t = t;
        loop {
            if s.poll(t).iter().any(|r| r.request_id == 9001) {
                break;
            }
            t += 100_000;
            assert!(t < 60_000_000_000, "write never completed");
        }
    }

    #[test]
    fn background_drain_copies_dirty_extents_to_backing() {
        let mut s = staged_server(fast_staging());
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/ckpt", 3 << 20, 0);
        assert!(s.drain_status_snapshot().unwrap().dirty_bytes >= (3 << 20) as u64);
        let t = poll_until_clean(&mut s, 1_000_000);
        let status = s.drain_status_snapshot().unwrap();
        assert_eq!(status.dirty_bytes, 0);
        assert_eq!(status.backing_bytes, (3 << 20) as u64);
        assert!(status.drained_ops >= 3, "stripes drained individually");
        // The data stayed resident (no watermark pressure) and readable.
        assert_eq!(s.fs().read_at("/ckpt", 0, 16).unwrap(), vec![0xAB; 16]);
        assert!(t > 0);
    }

    #[test]
    fn flush_of_clean_file_is_noop_ack() {
        let mut s = staged_server(fast_staging());
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/clean", 1 << 20, 0);
        poll_until_clean(&mut s, 1_000_000);
        // File fully drained: the flush acknowledges immediately, without
        // queueing any drain work.
        let queued_before = s.queued();
        s.flush(42, meta(1, 1), "/clean", 10_000_000);
        let replies = s.take_stage_replies();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].request_id, 42);
        match replies[0].reply {
            StageReply::Flushed { backing_bytes } => {
                assert_eq!(backing_bytes, (1 << 20) as u64)
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.queued(), queued_before);
        // A flush of a path with no extents at all is also a no-op ack.
        s.flush(43, meta(1, 1), "/never-written", 10_000_000);
        let replies = s.take_stage_replies();
        assert!(
            matches!(replies[0].reply, StageReply::Flushed { backing_bytes: 0 }),
            "{:?}",
            replies[0].reply
        );
    }

    #[test]
    fn flush_of_dirty_file_acks_after_drain() {
        let mut s = staged_server(fast_staging());
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/dirty", 2 << 20, 0);
        s.flush(77, meta(1, 1), "/dirty", 1_000_000);
        assert!(s.take_stage_replies().is_empty(), "ack must wait for drain");
        let mut t = 1_000_000;
        let replies = loop {
            s.poll(t);
            let replies = s.take_stage_replies();
            if !replies.is_empty() {
                break replies;
            }
            t += 100_000;
            assert!(t < 60_000_000_000, "flush never acknowledged");
        };
        assert_eq!(replies[0].request_id, 77);
        assert!(matches!(
            replies[0].reply,
            StageReply::Flushed { backing_bytes } if backing_bytes == (2 << 20) as u64
        ));
        assert_eq!(s.drain_status_snapshot().unwrap().dirty_bytes, 0);
    }

    #[test]
    fn policy_swap_mid_drain_keeps_epoch_semantics() {
        let mut s = staged_server(fast_staging());
        s.heartbeat(meta(1, 4), 0);
        s.heartbeat(meta(2, 1), 0);
        write_file(&mut s, "/mid", 4 << 20, 0);
        // Kick the pipeline so drain requests are admitted and in flight.
        s.poll(1_000_000);
        let queued_before = s.queued();
        assert!(
            !s.drain_status_snapshot().unwrap().is_clean(),
            "drain should be in progress"
        );
        // Live SetPolicy mid-drain: accepted (the staged engine delegates to
        // the themis engine underneath), epoch bumps, queues — foreground and
        // drain — are preserved.
        let epoch = s.set_policy(Policy::job_fair()).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(s.policy_epoch(), 1);
        assert_eq!(s.queued(), queued_before);
        assert!((s.shares().share(JobId(1)) - 0.5).abs() < 1e-9);
        // The drain still completes under the new policy.
        poll_until_clean(&mut s, 2_000_000);
        assert_eq!(
            s.drain_status_snapshot().unwrap().backing_bytes,
            (4 << 20) as u64
        );
    }

    #[test]
    fn eviction_reclaims_clean_extents_but_never_dirty_ones() {
        let mut staging = fast_staging();
        staging.drain.high_watermark_bytes = 2 << 20;
        staging.drain.low_watermark_bytes = 1 << 20;
        let mut s = staged_server(staging);
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/big", 4 << 20, 0);
        // While everything is dirty, watermark pressure must evict nothing:
        // a dirty extent's only copy is the burst buffer.
        s.poll(1_000);
        let status = s.drain_status_snapshot().unwrap();
        assert_eq!(status.evicted_bytes, 0);
        assert!(status.resident_bytes >= (4 << 20) as u64);
        // Once drained, the clean extents above the watermark are reclaimed.
        poll_until_clean(&mut s, 1_000_000);
        s.poll(60_000_000);
        let status = s.drain_status_snapshot().unwrap();
        assert!(status.evicted_bytes > 0, "watermark eviction ran");
        // Eviction triggers above the high watermark and reclaims down to
        // the low watermark, so steady state is at or below high.
        assert!(
            status.resident_bytes <= (2 << 20) as u64,
            "resident {} above high watermark",
            status.resident_bytes
        );
        assert_eq!(status.dirty_bytes, 0);
        assert_eq!(status.backing_bytes, (4 << 20) as u64);
    }

    #[test]
    fn stage_in_restores_evicted_data_byte_for_byte() {
        let mut staging = fast_staging();
        staging.drain.high_watermark_bytes = 1 << 20;
        staging.drain.low_watermark_bytes = 0;
        let mut s = staged_server(staging);
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/evicted", 3 << 20, 0);
        poll_until_clean(&mut s, 1_000_000);
        s.poll(60_000_000);
        assert_eq!(s.drain_status_snapshot().unwrap().resident_bytes, 0);
        // An explicit stage-in queues policy-admitted restore traffic; the
        // acknowledgement is deferred until every extent has landed, and the
        // restore backlog is observable in the status meanwhile.
        s.stage_in(55, meta(1, 1), "/evicted", 70_000_000);
        assert!(
            s.take_stage_replies().is_empty(),
            "ack must wait for the queued restores"
        );
        assert_eq!(
            s.drain_status_snapshot().unwrap().pending_restore_bytes,
            (3 << 20) as u64
        );
        let mut t = 70_000_000;
        let replies = loop {
            s.poll(t);
            let replies = s.take_stage_replies();
            if !replies.is_empty() {
                break replies;
            }
            t += 100_000;
            assert!(t < 120_000_000_000, "stage-in never acknowledged");
        };
        assert_eq!(replies[0].request_id, 55);
        assert!(matches!(
            replies[0].reply,
            StageReply::StagedIn { restored_bytes } if restored_bytes == (3 << 20) as u64
        ));
        let status = s.drain_status_snapshot().unwrap();
        assert_eq!(status.restored_bytes, (3 << 20) as u64);
        assert_eq!(status.pending_restore_bytes, 0);
        assert!(status.restore_idle());
        // Byte-for-byte contents through the server read path (the tight
        // watermarks may re-evict immediately; the read parks and restores
        // transparently).
        s.submit(
            57,
            meta(1, 1),
            FsOp::ReadAt {
                path: "/evicted".into(),
                offset: 0,
                len: 3 << 20,
            },
            t,
        );
        let data = loop {
            let replies = s.poll(t);
            if let Some(r) = replies.iter().find(|r| r.request_id == 57) {
                match &r.reply {
                    FsReply::Data(d) => break d.clone(),
                    other => panic!("unexpected {other:?}"),
                }
            }
            t += 100_000;
            assert!(t < 240_000_000_000, "read never completed");
        };
        assert_eq!(data, vec![0xAB; 3 << 20]);
    }

    #[test]
    fn evicted_data_is_restored_transparently_on_read() {
        let mut staging = fast_staging();
        staging.drain.high_watermark_bytes = 1 << 20;
        staging.drain.low_watermark_bytes = 0;
        let mut s = staged_server(staging);
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/lazy", 2 << 20, 0);
        poll_until_clean(&mut s, 1_000_000);
        s.poll(60_000_000);
        assert_eq!(s.drain_status_snapshot().unwrap().resident_bytes, 0);
        // A plain read through the request path stages the extents back in
        // instead of returning zeros or failing.
        s.submit(
            500,
            meta(1, 1),
            FsOp::ReadAt {
                path: "/lazy".into(),
                offset: 0,
                len: 2 << 20,
            },
            70_000_000,
        );
        let mut t = 70_000_000;
        let data = loop {
            let replies = s.poll(t);
            if let Some(r) = replies.iter().find(|r| r.request_id == 500) {
                match &r.reply {
                    FsReply::Data(d) => break d.clone(),
                    other => panic!("unexpected {other:?}"),
                }
            }
            t += 100_000;
            assert!(t < 120_000_000_000, "read never completed");
        };
        assert_eq!(data, vec![0xAB; 2 << 20]);
    }

    #[test]
    fn client_job_id_in_drain_range_is_rejected_not_dropped() {
        // A malicious/buggy client using a job id inside the reserved drain
        // range must get an error reply — never have its request mistaken
        // for drain traffic and silently dropped. Both with and without
        // staging.
        for staging in [None, Some(fast_staging())] {
            let fs = BurstBufferFs::new(1);
            let mut s = ServerCore::new(
                0,
                fs,
                ServerConfig {
                    staging,
                    ..ServerConfig::default()
                },
            );
            let evil = JobMeta::new(themis_stage::DRAIN_JOB_BASE + 1, 1u32, 1u32, 1);
            s.submit(31, evil, FsOp::Mkdir { path: "/d".into() }, 0);
            let replies = s.poll(0);
            assert_eq!(replies.len(), 1);
            assert_eq!(replies[0].request_id, 31);
            assert!(
                matches!(replies[0].reply, FsReply::Error(_)),
                "{:?}",
                replies[0].reply
            );
            assert!(!s.fs().exists("/d"));
            assert_eq!(s.queued(), 0);
            // Staging messages enforce the same boundary: a reserved meta in
            // Flush/StageIn must never reach the job table (where it would
            // dilute real tenants' shares).
            s.flush(32, evil, "/d", 0);
            s.stage_in(33, evil, "/d", 0);
            let stage = s.take_stage_replies();
            assert_eq!(stage.len(), 2);
            assert!(stage
                .iter()
                .all(|r| matches!(r.reply, StageReply::Error(_))));
            assert_eq!(s.shares().share(evil.job), 0.0);
            assert!(s.local_table().get(evil.job).is_none());
        }
    }

    #[test]
    fn partial_write_to_evicted_extent_preserves_surrounding_bytes() {
        // Overwriting a few bytes of an evicted extent must merge with the
        // capacity-tier copy (restore-for-write), not lose the rest of the
        // extent — and only the written stripe comes back pinned dirty.
        let mut staging = fast_staging();
        staging.drain.high_watermark_bytes = 1 << 20;
        staging.drain.low_watermark_bytes = 0;
        let mut s = staged_server(staging);
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/part", 3 << 20, 0);
        poll_until_clean(&mut s, 1_000_000);
        s.poll(60_000_000);
        assert_eq!(s.drain_status_snapshot().unwrap().resident_bytes, 0);
        // Overwrite 4 bytes in the middle of stripe 1.
        s.submit(
            600,
            meta(1, 1),
            FsOp::WriteAt {
                path: "/part".into(),
                offset: (1 << 20) + 100,
                data: vec![0xFF; 4],
            },
            70_000_000,
        );
        let mut t = 70_000_000;
        loop {
            if s.poll(t).iter().any(|r| r.request_id == 600) {
                break;
            }
            t += 100_000;
            assert!(t < 120_000_000_000, "write never completed");
        }
        // Only the written stripe needs re-draining: untouched stripes came
        // back clean (or stayed evicted), so dirty bytes are one stripe.
        assert_eq!(
            s.drain_status_snapshot().unwrap().dirty_bytes,
            1 << 20,
            "only the written stripe should be dirty"
        );
        // Read back the whole file: surrounding bytes intact, overwrite
        // applied.
        s.submit(
            601,
            meta(1, 1),
            FsOp::ReadAt {
                path: "/part".into(),
                offset: 0,
                len: 3 << 20,
            },
            t,
        );
        let data = loop {
            let replies = s.poll(t);
            if let Some(r) = replies.iter().find(|r| r.request_id == 601) {
                match &r.reply {
                    FsReply::Data(d) => break d.clone(),
                    other => panic!("unexpected {other:?}"),
                }
            }
            t += 100_000;
            assert!(t < 240_000_000_000, "read never completed");
        };
        assert_eq!(data.len(), 3 << 20);
        assert!(data[..(1 << 20) + 100].iter().all(|b| *b == 0xAB));
        assert_eq!(&data[(1 << 20) + 100..(1 << 20) + 104], &[0xFF; 4]);
        assert!(data[(1 << 20) + 104..].iter().all(|b| *b == 0xAB));
    }

    #[test]
    fn cursor_io_on_evicted_data_preserves_descriptor_order() {
        // Cursor-based Read/Write never park behind restores — parking
        // would let a later same-fd request execute first and move the
        // cursor out from under the parked one. They take the synchronous
        // fallback instead, so a pipelined open→read→read sequence on a
        // fully evicted file completes in order with correct bytes.
        let mut staging = fast_staging();
        staging.drain.high_watermark_bytes = 1 << 20;
        staging.drain.low_watermark_bytes = 0;
        let mut s = staged_server(staging);
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/cursor", 2 << 20, 0);
        poll_until_clean(&mut s, 1_000_000);
        s.poll(60_000_000);
        assert_eq!(s.drain_status_snapshot().unwrap().resident_bytes, 0);
        s.submit(
            700,
            meta(1, 1),
            FsOp::Open {
                path: "/cursor".into(),
                create: false,
                truncate: false,
                append: false,
            },
            70_000_000,
        );
        let mut t = 70_000_000;
        let fd = loop {
            let replies = s.poll(t);
            if let Some(r) = replies.iter().find(|r| r.request_id == 700) {
                match r.reply {
                    FsReply::Fd(fd) => break fd,
                    ref other => panic!("unexpected {other:?}"),
                }
            }
            t += 100_000;
            assert!(t < 120_000_000_000, "open never completed");
        };
        // Two pipelined cursor reads covering the whole evicted file.
        s.submit(701, meta(1, 1), FsOp::Read { fd, len: 1 << 20 }, t);
        s.submit(702, meta(1, 1), FsOp::Read { fd, len: 1 << 20 }, t);
        let mut got: Vec<(u64, Vec<u8>)> = Vec::new();
        while got.len() < 2 {
            for r in s.poll(t) {
                if r.request_id == 701 || r.request_id == 702 {
                    match &r.reply {
                        FsReply::Data(d) => got.push((r.request_id, d.clone())),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
            t += 100_000;
            assert!(t < 240_000_000_000, "cursor reads never completed");
        }
        // In-order completion, each read a full non-overlapping megabyte.
        assert_eq!(got[0].0, 701);
        assert_eq!(got[1].0, 702);
        assert_eq!(got[0].1, vec![0xAB; 1 << 20]);
        assert_eq!(got[1].1, vec![0xAB; 1 << 20]);
    }

    #[test]
    fn huge_offset_write_at_is_an_error_not_a_panic() {
        // With extents evicted (so the residency pre-check's early-out does
        // not fire), a client-controlled WriteAt near u64::MAX must travel
        // the parking pre-check's saturating stripe arithmetic and come back
        // as a clean error reply — never panic the server.
        let mut staging = fast_staging();
        staging.drain.high_watermark_bytes = 1 << 20;
        staging.drain.low_watermark_bytes = 0;
        let mut s = staged_server(staging);
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/edge", 2 << 20, 0);
        poll_until_clean(&mut s, 1_000_000);
        s.poll(60_000_000);
        assert!(s.fs().evicted_count_on(0) > 0, "extents must be evicted");
        s.submit(
            910,
            meta(1, 1),
            FsOp::WriteAt {
                path: "/edge".into(),
                offset: u64::MAX - 1,
                data: vec![9u8; 3],
            },
            60_000_000,
        );
        let mut t = 60_000_000;
        loop {
            let replies = s.poll(t);
            if let Some(r) = replies.iter().find(|r| r.request_id == 910) {
                assert!(matches!(r.reply, FsReply::Error(_)), "{:?}", r.reply);
                break;
            }
            t += 100_000;
            assert!(t < 120_000_000_000, "write never answered");
        }
    }

    #[test]
    fn unlink_during_drain_leaves_no_stale_tier_copy() {
        // Delete-wins across servers: server 1 unlinks a path while server
        // 0's drain of it is anywhere in flight. Whatever interleaving the
        // polls produce, quiescence must leave the shared capacity tier with
        // zero bytes for the path. (The exact snapshot→unlink→write_back
        // window is covered deterministically by the stage crate's
        // `write_back_guarded` test; this exercises the wiring end to end.)
        let fs = BurstBufferFs::new(2);
        let staging = fast_staging();
        let backing: Arc<dyn BackingStore> = Arc::new(CapacityTier::new(staging.backing_device));
        let config = |_| ServerConfig {
            algorithm: Algorithm::Themis(Policy::size_fair()),
            staging: Some(fast_staging()),
            ..ServerConfig::default()
        };
        let mut s0 = ServerCore::with_backing(0, fs.clone(), config(0), Some(backing.clone()));
        let mut s1 = ServerCore::with_backing(1, fs.clone(), config(1), Some(backing.clone()));
        s0.heartbeat(meta(1, 1), 0);
        s1.heartbeat(meta(1, 1), 0);
        write_file(&mut s0, "/doomed", 2 << 20, 0);
        // Kick the drain pipeline so drains are admitted/in flight on s0.
        s0.poll(1_000_000);
        assert!(!s0.drain_status_snapshot().unwrap().is_clean());
        // Peer unlinks mid-drain through its own request path.
        s1.submit(
            70,
            meta(1, 1),
            FsOp::Unlink {
                path: "/doomed".into(),
            },
            1_000_000,
        );
        let replies = s1.poll(1_000_000);
        assert!(
            matches!(replies[0].reply, FsReply::Ok),
            "{:?}",
            replies[0].reply
        );
        // Drive both servers to quiescence.
        let mut t = 1_000_000;
        loop {
            s0.poll(t);
            s1.poll(t);
            let clean = s0.drain_status_snapshot().unwrap().is_clean()
                && s1.drain_status_snapshot().unwrap().is_clean();
            if clean {
                break;
            }
            t += 100_000;
            assert!(t < 60_000_000_000, "drain never quiesced after unlink");
        }
        assert_eq!(
            backing.bytes_for("/doomed"),
            0,
            "stale copy leaked into the shared capacity tier"
        );
        assert!(!fs.exists("/doomed"));
    }

    #[test]
    fn drain_status_without_staging_is_an_error() {
        let mut s = server(Policy::size_fair());
        assert!(s.drain_status_snapshot().is_none());
        s.drain_status(1);
        let replies = s.take_stage_replies();
        assert!(matches!(replies[0].reply, StageReply::Error(_)));
        s.flush(2, meta(1, 1), "/x", 0);
        let replies = s.take_stage_replies();
        assert!(matches!(replies[0].reply, StageReply::Error(_)));
    }

    /// Satellite (regression): status snapshots cut *mid-restore* are
    /// internally consistent — the derived backlog `requested - completed`
    /// never underflows (the subtraction itself would panic in debug if a
    /// snapshot ever showed completed ahead of requested), and the restored
    /// totals never exceed what was requested.
    #[test]
    fn mid_restore_status_snapshots_never_overcount_completed() {
        let mut staging = fast_staging();
        staging.drain.high_watermark_bytes = 1 << 20;
        staging.drain.low_watermark_bytes = 0;
        let mut s = staged_server(staging);
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/mid", 2 << 20, 0);
        poll_until_clean(&mut s, 1_000_000);
        s.poll(60_000_000);
        assert_eq!(s.drain_status_snapshot().unwrap().resident_bytes, 0);
        // A read of the evicted file parks behind policy-admitted restores.
        s.submit(
            700,
            meta(1, 1),
            FsOp::ReadAt {
                path: "/mid".into(),
                offset: 0,
                len: 2 << 20,
            },
            70_000_000,
        );
        let mut t = 70_000_000;
        let mut saw_backlog = false;
        loop {
            let done = s.poll(t).iter().any(|r| r.request_id == 700);
            // Cut a status snapshot at every step of the restore, including
            // between admission and completion of individual extents.
            let status = s.drain_status_snapshot().unwrap();
            saw_backlog |= status.pending_restore_bytes > 0;
            assert!(
                status.restored_bytes <= (2 << 20) + status.pending_restore_bytes,
                "restored {} beyond requested work (backlog {})",
                status.restored_bytes,
                status.pending_restore_bytes
            );
            if done {
                break;
            }
            t += 100_000;
            assert!(t < 120_000_000_000, "read never completed");
        }
        assert!(saw_backlog, "never observed a mid-restore backlog");
        // The park/wake accounting closed out: every park woke exactly once,
        // and each wake recorded a park duration sample.
        let snap = s.metrics_registry().snapshot(t);
        let parked = snap.counter(0, 0, "foreground", "parked_ops");
        let wakes = snap.counter(0, 0, "foreground", "wakes");
        assert!(parked >= 1);
        assert_eq!(parked, wakes);
        assert_eq!(snap.histogram(0, 0, "foreground", "park_ns").count, wakes);
        assert!(s.drain_status_snapshot().unwrap().restore_idle());
    }

    #[test]
    fn metrics_snapshot_covers_tenants_classes_and_gauges() {
        let mut s = staged_server(fast_staging());
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/obs", 3 << 20, 0);
        let t = poll_until_clean(&mut s, 1_000_000);
        let status = s.drain_status_snapshot().unwrap();
        s.metrics_snapshot(77, t);
        let replies = s.take_stage_replies();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].request_id, 77);
        let StageReply::Metrics(snap) = &replies[0].reply else {
            panic!("unexpected reply {:?}", replies[0].reply);
        };
        assert_eq!(snap.taken_ns, t);
        // Per-tenant completion series match the server's own accounting.
        let ops = snap.counter(0, 1, "foreground", "ops_completed");
        assert_eq!(ops, s.completions());
        assert!(snap.counter(0, 1, "foreground", "bytes_completed") >= (3 << 20) as u64);
        assert_eq!(
            snap.histogram(0, 1, "foreground", "queue_delay_ns").count,
            ops
        );
        assert_eq!(snap.histogram(0, 1, "foreground", "service_ns").count, ops);
        assert_eq!(snap.tenants().into_iter().collect::<Vec<_>>(), vec![1]);
        // Class lanes carry the drain's admission and completion history —
        // and they agree with the registry-view DrainStatus.
        assert_eq!(
            snap.counter(0, 0, "drain", "drained_bytes"),
            status.drained_bytes
        );
        assert_eq!(
            snap.counter(0, 0, "drain", "drained_ops"),
            status.drained_ops
        );
        assert!(snap.counter(0, 0, "drain", "admitted_bytes") >= status.drained_bytes);
        // Gauges were refreshed at the cut.
        assert_eq!(
            snap.gauge(0, 0, "fs", "backing_bytes") as u64,
            status.backing_bytes
        );
        assert_eq!(snap.gauge(0, 0, "fs", "dirty_bytes"), 0);
        // The snapshot renders to offline-safe flat JSON.
        let json = snap.to_json();
        assert!(json.contains("\"srv0.t1.foreground.ops_completed\""));
        assert!(json.contains("\"srv0.t0.drain.drained_bytes\""));
    }

    #[test]
    fn trace_dump_merges_engine_and_core_decisions() {
        let mut staging = fast_staging();
        staging.drain.high_watermark_bytes = 1 << 20;
        staging.drain.low_watermark_bytes = 0;
        let mut s = staged_server(staging);
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/trace", 2 << 20, 0);
        poll_until_clean(&mut s, 1_000_000);
        s.poll(60_000_000);
        // Bump the policy epoch so decisions after the swap are stamped.
        let epoch = s.set_policy(Policy::job_fair()).unwrap();
        assert_eq!(epoch, 1);
        // A read of evicted data: engine admissions/selections plus a core
        // park and wake.
        s.submit(
            800,
            meta(1, 1),
            FsOp::ReadAt {
                path: "/trace".into(),
                offset: 0,
                len: 2 << 20,
            },
            70_000_000,
        );
        let mut t = 70_000_000;
        loop {
            if s.poll(t).iter().any(|r| r.request_id == 800) {
                break;
            }
            t += 100_000;
            assert!(t < 120_000_000_000, "read never completed");
        }
        s.trace_dump(88, 10_000);
        let replies = s.take_stage_replies();
        assert_eq!(replies[0].request_id, 88);
        let StageReply::Trace(dump) = &replies[0].reply else {
            panic!("unexpected reply {:?}", replies[0].reply);
        };
        if themis_telemetry::DecisionTrace::enabled() {
            let kinds: Vec<TraceKind> = dump.events.iter().map(|e| e.kind).collect();
            assert!(kinds.contains(&TraceKind::Park), "no park event");
            assert!(kinds.contains(&TraceKind::Wake), "no wake event");
            assert!(kinds.contains(&TraceKind::Admit), "no engine admission");
            // Merged stream is ordered by decision time, and post-swap
            // decisions carry the new epoch.
            assert!(dump.events.windows(2).all(|w| w[0].now_ns <= w[1].now_ns));
            assert!(dump.events.iter().any(|e| e.epoch == 1));
            assert!(dump.render().contains("park"));
        } else {
            assert!(dump.events.is_empty());
            assert_eq!(dump.dropped, 0);
        }
    }

    /// Satellite (pinning): `trace_dump_snapshot` merges the engine ring
    /// with the core ring but still honours `max` — the newest events win,
    /// the merged stream stays oldest-first, and `dropped` accounts exactly
    /// for everything not returned (each ring's own overwrites plus the
    /// merge-step cut). The identity checked at the end holds regardless of
    /// how the retained events split across the two rings.
    #[test]
    fn trace_dump_truncation_keeps_newest_events_with_exact_drop_accounting() {
        let mut staging = fast_staging();
        staging.drain.high_watermark_bytes = 1 << 20;
        staging.drain.low_watermark_bytes = 0;
        let mut s = staged_server(staging);
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/cut", 2 << 20, 0);
        poll_until_clean(&mut s, 1_000_000);
        s.poll(60_000_000);
        // A read of evicted data populates both rings: engine admissions
        // and selections, core parks and wakes.
        s.submit(
            810,
            meta(1, 1),
            FsOp::ReadAt {
                path: "/cut".into(),
                offset: 0,
                len: 2 << 20,
            },
            70_000_000,
        );
        let mut t = 70_000_000;
        loop {
            if s.poll(t).iter().any(|r| r.request_id == 810) {
                break;
            }
            t += 100_000;
            assert!(t < 120_000_000_000, "read never completed");
        }
        let full = s.trace_dump_snapshot(10_000);
        if !themis_telemetry::DecisionTrace::enabled() {
            assert!(full.events.is_empty());
            assert_eq!(full.dropped, 0);
            return;
        }
        assert!(full.events.len() > 4, "too few events to exercise the cut");
        let small = s.trace_dump_snapshot(4);
        // Never more than max, even though two rings each returned up to
        // max before the merge.
        assert_eq!(small.events.len(), 4);
        assert!(small.events.windows(2).all(|w| w[0].now_ns <= w[1].now_ns));
        // The survivors are the newest of the merged stream.
        let tail: Vec<u64> = full.events[full.events.len() - 4..]
            .iter()
            .map(|e| e.now_ns)
            .collect();
        let kept: Vec<u64> = small.events.iter().map(|e| e.now_ns).collect();
        assert_eq!(kept, tail);
        // Exact accounting: both dumps cover the same recorded set, so
        // returned + dropped must agree between them.
        assert_eq!(
            small.dropped,
            full.dropped + (full.events.len() as u64 - 4),
            "merge cut not reflected in the dropped count"
        );
    }

    /// End-to-end rebalance: a server whose staging drains into a sharded
    /// capacity tier (built from its `ShardSpec`) reacts to a mid-run map
    /// change by migrating the drained extents through the Rebalance lane —
    /// checksum-verified, policy-arbitrated alongside foreground traffic —
    /// until the tier's own placement audit converges on the new map.
    #[test]
    fn reshard_migrates_drained_extents_until_placement_converges() {
        let mut staging = fast_staging();
        staging.sharding = Some(themis_stage::ShardSpec {
            // Everything lands on child 0 at first; child 1 (a genuinely
            // different device preset) idles until the reshard.
            map: "00-ff=0".into(),
            replication: 1,
            backends: vec![DeviceConfig::default(), DeviceConfig::optane_ssd()],
        });
        let mut s = staged_server(staging);
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/shard-a", 2 << 20, 0);
        write_file(&mut s, "/shard-b", 1 << 20, 0);
        let mut t = poll_until_clean(&mut s, 1_000_000);
        let status = s.rebalance_status_snapshot().expect("staging enabled");
        assert!(status.sharded);
        assert!(status.is_converged(), "nothing to migrate before a reshard");
        assert_eq!(status.migrated_extents, 0);

        // Reshard: split the range across both children and double the
        // replication — every drained extent now owes at least one new copy.
        {
            let st = s.staging.as_ref().unwrap();
            let sharded = st.backing.as_sharded().unwrap();
            sharded
                .install_map(themis_stage::ShardMap::parse("00-7f=0,80-ff=1").unwrap(), 2)
                .unwrap();
        }
        loop {
            s.poll(t);
            if s.rebalance_status_snapshot().unwrap().is_converged() {
                break;
            }
            t += 100_000;
            assert!(t < 60_000_000_000, "rebalance never converged");
        }
        let status = s.rebalance_status_snapshot().unwrap();
        assert!(status.migrated_extents > 0, "map change moved nothing");
        assert!(status.migrated_bytes > 0);
        assert_eq!(status.failed_extents, 0);
        assert_eq!(status.pending_bytes, 0);
        assert!(status.passes_completed >= 1);
        // The tier's own audit agrees: every extent holds its full replica
        // set under the new map, with the stale copies pruned.
        let st = s.staging.as_ref().unwrap();
        let report = st.backing.as_sharded().unwrap().verify_placement();
        assert!(report.converged(), "placement audit: {report:?}");
        assert!(report.extents > 0);
    }

    #[test]
    fn fifo_server_works_through_same_interface() {
        let fs = BurstBufferFs::new(1);
        let mut s = ServerCore::new(
            0,
            fs,
            ServerConfig {
                algorithm: Algorithm::Fifo,
                ..ServerConfig::default()
            },
        );
        let m = meta(5, 1);
        s.submit(1, m, FsOp::Mkdir { path: "/d".into() }, 0);
        let replies = s.poll(0);
        assert!(matches!(replies[0].reply, FsReply::Ok));
        assert!(s.fs().exists("/d"));
    }

    // ---------------------------------------------------------- durability

    use themis_core::durability::{DurabilityMode, DurabilitySpec};

    fn durable_staging(spec: DurabilitySpec) -> StagingConfig {
        let mut cfg = fast_staging();
        cfg.drain.classes = cfg
            .drain
            .classes
            .enable(themis_stage::TrafficClass::Replicate, 16);
        cfg.durability = Some(spec);
        cfg
    }

    /// Polls until the replicate pipeline reports idle, returning the final
    /// status.
    fn poll_until_replicated(s: &mut ServerCore, mut t: u64) -> ReplicateStatus {
        loop {
            s.poll(t);
            let status = s.replicate_status_snapshot().expect("staging enabled");
            if status.is_idle() {
                return status;
            }
            t += 100_000;
            assert!(t < 60_000_000_000, "replication never caught up");
        }
    }

    #[test]
    fn durable_writes_replicate_and_survive_burst_loss() {
        let mut s = staged_server(durable_staging(DurabilitySpec::new(
            DurabilityMode::LocalPlusOne,
        )));
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/ckpt", 2 << 20, 0);
        // Oracle: replication lag drains to zero at quiescence.
        let status = poll_until_replicated(&mut s, 1_000_000);
        assert!(status.enabled);
        assert_eq!(status.lag_bytes, 0);
        assert!(status.replicated_extents >= 2, "{status:?}");
        assert_eq!(status.failed_replications, 0);
        assert_eq!(status.sync_acks_deferred, 0, "local_plus_one acks early");
        // Crash-before-replicate conditioning: lose the burst tier — every
        // acked byte must be reconstructable from verified replica copies.
        let stripe_size = s.fs().layout_of("/ckpt").unwrap().config.stripe_size.max(1);
        let total = 2u64 << 20;
        let mut recovered = 0u64;
        for stripe in 0..(2u64 << 20).div_ceil(stripe_size) {
            let copy = s.replica_extent("/ckpt", stripe).expect("replica landed");
            assert!(copy.iter().all(|b| *b == 0xAB), "stripe {stripe} corrupt");
            recovered += copy.len() as u64;
        }
        assert_eq!(recovered, total);
    }

    #[test]
    fn local_only_writes_owe_no_replicas() {
        // Job 1 opts out of replication: crash-before-replicate may lose
        // exactly (and only) its bytes.
        let spec = DurabilitySpec::new(DurabilityMode::LocalPlusOne)
            .with_job(1, DurabilityMode::LocalOnly)
            .unwrap();
        let mut s = staged_server(durable_staging(spec));
        s.heartbeat(meta(1, 1), 0);
        write_file(&mut s, "/scratch", 1 << 20, 0);
        poll_until_clean(&mut s, 1_000_000);
        let status = s.replicate_status_snapshot().unwrap();
        assert!(status.enabled, "other scopes still replicate");
        assert_eq!(status.requested_bytes, 0, "{status:?}");
        assert!(s.replica_extent("/scratch", 0).is_none());
    }

    #[test]
    fn sync_acks_defer_until_the_replica_lands() {
        let spec = DurabilitySpec::new(DurabilityMode::Sync);
        let mut s = staged_server(durable_staging(spec));
        let m = meta(1, 1);
        s.heartbeat(m, 0);
        s.submit(
            1,
            m,
            FsOp::Open {
                path: "/db".into(),
                create: true,
                truncate: false,
                append: false,
            },
            0,
        );
        let fd = loop {
            if let Some(r) = s.poll(0).iter().find(|r| r.request_id == 1) {
                match r.reply {
                    FsReply::Fd(fd) => break fd,
                    ref other => panic!("unexpected {other:?}"),
                }
            }
        };
        s.submit(
            2,
            m,
            FsOp::Write {
                fd,
                data: vec![0x5A; 1 << 20],
            },
            1_000,
        );
        // Drive the write to execution: its ack must NOT surface while the
        // replica is still in flight.
        let mut t = 1_000;
        let mut acked_at = None;
        while acked_at.is_none() {
            if s.poll(t).iter().any(|r| r.request_id == 2) {
                acked_at = Some(t);
                break;
            }
            let status = s.replicate_status_snapshot().unwrap();
            if status.sync_acks_deferred > status.sync_acks_released {
                // The write executed and its ack is parked on the pipeline.
                assert_eq!(s.completions(), 2, "write completed internally");
            }
            t += 100_000;
            assert!(t < 60_000_000_000, "sync ack never released");
        }
        let status = s.replicate_status_snapshot().unwrap();
        assert_eq!(status.sync_acks_deferred, 1);
        assert_eq!(status.sync_acks_released, 1);
        assert!(status.replicated_extents >= 1);
        // The replica had landed by ack time: the acked bytes survive a
        // burst-tier crash.
        assert!(s.replica_extent("/db", 0).is_some());
        // And the ack was genuinely deferred past the write's own
        // completion poll.
        assert!(acked_at.unwrap() > 1_000);
    }
}
