//! # themis-server
//!
//! The ThemisIO server (§4.1): a job monitor tracking per-job heartbeats, a
//! communicator that queues incoming I/O requests by job, a controller that
//! turns the sharing policy and the (λ-synchronised) job table into
//! statistical token assignments, and a worker loop that serves requests
//! against the shared burst-buffer file system.
//!
//! [`core::ServerCore`] is the transport-free, steppable implementation;
//! [`runtime::Deployment`] runs one core per server on real threads with
//! in-process endpoints standing in for UCX.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod core;
pub mod runtime;

pub use crate::core::{ReadyReply, ServerConfig, ServerCore, StageReady};
pub use crate::runtime::{ClientConnection, Deployment};
