//! # themis-client
//!
//! The client side of ThemisIO (§4.4): a POSIX-flavoured API that embeds job
//! metadata in every request, routes each path to the burst-buffer server
//! that owns it, and keeps the job alive with heartbeats.
//!
//! On the paper's testbed the client is injected into unmodified applications
//! by intercepting glibc I/O functions (override / trampoline). A Rust
//! reproduction cannot ship a glibc shim, so the interception layer is
//! represented by [`Namespace`]: callers route any path under the ThemisIO
//! prefix (`/fs/...` by default) through [`ThemisClient`], and everything
//! else goes to the host file system untouched — the same decision the
//! interception shim makes, one call earlier.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use themis_core::entity::JobMeta;
use themis_core::policy::Policy;
use themis_fs::ring::stable_hash;
use themis_fs::store::StatInfo;
use themis_fs::{FsError, FsResult, StripeConfig};
use themis_net::message::{ClientMessage, FsOp, FsReply, ServerMessage, StageReply};
use themis_stage::{DrainStatus, RebalanceStatus, ReplicateStatus, ScrubStatus};
use themis_telemetry::{MetricsSnapshot, TraceDump};

/// The ThemisIO namespace decision: which paths are intercepted.
#[derive(Debug, Clone)]
pub struct Namespace {
    prefix: String,
}

impl Namespace {
    /// Creates a namespace with the given prefix (e.g. `/fs`).
    pub fn new(prefix: impl Into<String>) -> Self {
        Namespace {
            prefix: prefix.into(),
        }
    }

    /// The default `/fs` namespace.
    pub fn default_fs() -> Self {
        Namespace::new(themis_fs::path::DEFAULT_NAMESPACE)
    }

    /// Whether a path would be intercepted.
    pub fn intercepts(&self, path: &str) -> bool {
        themis_fs::path::in_namespace(path, &self.prefix)
    }

    /// Translates an application path into the burst-buffer path, or `None`
    /// when the path is outside the namespace (pass through to the host FS).
    pub fn translate(&self, path: &str) -> Option<String> {
        themis_fs::path::strip_namespace(path, &self.prefix)
    }
}

/// A connection to one server, as required by the client: send a message,
/// receive the next reply. The server crate's `ClientConnection` satisfies
/// this; tests can provide mocks.
pub trait ServerLink: Send {
    /// Sends one message to the server.
    fn send(&self, msg: ClientMessage);
    /// Waits for the next server message (None when the server went away).
    fn recv(&self, timeout: Duration) -> Option<ServerMessage>;
}

/// The ThemisIO client: one per application process (§4.2), holding one link
/// per burst-buffer server.
pub struct ThemisClient<L: ServerLink> {
    meta: JobMeta,
    namespace: Namespace,
    links: Vec<L>,
    next_request: AtomicU64,
    /// fd → (server index, remote fd): descriptor state lives on the server
    /// that opened the file, so follow-up calls must go back to it.
    fds: parking_lot::Mutex<HashMap<u64, (usize, u64)>>,
    next_local_fd: AtomicU64,
    timeout: Duration,
}

impl<L: ServerLink> ThemisClient<L> {
    /// Creates a client for job `meta` over the given per-server links.
    ///
    /// # Panics
    ///
    /// Panics when `links` is empty or when `meta` claims a job id inside
    /// the reserved system range
    /// ([`themis_core::entity::RESERVED_JOB_BASE`]): such ids belong to
    /// server-internal traffic (drain, future maintenance classes) and the
    /// server would reject every request anyway, so the client fails fast at
    /// construction instead of on each I/O call.
    pub fn new(meta: JobMeta, links: Vec<L>, namespace: Namespace) -> Self {
        assert!(!links.is_empty(), "client needs at least one server link");
        assert!(
            !meta.is_reserved(),
            "job id {} is inside the reserved system job-id range (>= {})",
            meta.job,
            themis_core::entity::RESERVED_JOB_BASE
        );
        ThemisClient {
            meta,
            namespace,
            links,
            next_request: AtomicU64::new(1),
            fds: parking_lot::Mutex::new(HashMap::new()),
            next_local_fd: AtomicU64::new(3),
            timeout: Duration::from_secs(30),
        }
    }

    /// The job metadata this client embeds in every request.
    pub fn meta(&self) -> JobMeta {
        self.meta
    }

    /// Number of server links.
    pub fn server_count(&self) -> usize {
        self.links.len()
    }

    /// Announces the client to every server and returns the policy names the
    /// servers report (§4.2 connection establishment).
    pub fn hello(&self) -> Vec<String> {
        let mut policies = Vec::new();
        for link in &self.links {
            link.send(ClientMessage::Hello { meta: self.meta });
            if let Some(ServerMessage::Ack { policy, .. }) = link.recv(self.timeout) {
                policies.push(policy);
            }
        }
        policies
    }

    // ------------------------------------------------------- control plane

    /// Waits for the `PolicyChanged` / `PolicyRejected` acknowledgement
    /// matching `request_id` on one server link, skipping unrelated traffic.
    fn recv_policy_ack(&self, server: usize, request_id: u64) -> FsResult<(Policy, u64)> {
        loop {
            match self.links[server].recv(self.timeout) {
                Some(ServerMessage::PolicyChanged {
                    request_id: rid,
                    policy,
                    epoch,
                }) if rid == request_id => return Ok((policy, epoch)),
                Some(ServerMessage::PolicyRejected {
                    request_id: rid,
                    reason,
                }) if rid == request_id => return Err(FsError::InvalidArgument(reason)),
                Some(_) => continue,
                None => {
                    return Err(FsError::InvalidArgument(
                        "no acknowledgement from server (connection lost or timed out)".to_string(),
                    ))
                }
            }
        }
    }

    /// Swaps the sharing policy on **every** server of the deployment while
    /// jobs are running (§2.2.2's "single parameter", now reconfigurable at
    /// runtime). Returns the new policy epoch reported by each server, in
    /// server order. In-flight requests are unaffected; the new shares apply
    /// from each server's next scheduling epoch.
    ///
    /// The swap is broadcast to every server first and the acknowledgements
    /// collected afterwards, so the cross-server policy-skew window is one
    /// round-trip rather than `n_servers` of them. On failure the error
    /// names the first failing server and how many servers acknowledged the
    /// swap — those servers keep the new policy, so the deployment may be on
    /// mixed policies until a retry succeeds.
    pub fn set_policy(&self, policy: &Policy) -> FsResult<Vec<u64>> {
        // Phase 1: broadcast to every server.
        let request_ids: Vec<u64> = (0..self.links.len())
            .map(|server| {
                let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
                self.links[server].send(ClientMessage::SetPolicy {
                    request_id,
                    policy: policy.clone(),
                });
                request_id
            })
            .collect();
        // Phase 2: collect every acknowledgement before reporting.
        let acks: Vec<FsResult<(Policy, u64)>> = request_ids
            .iter()
            .enumerate()
            .map(|(server, rid)| self.recv_policy_ack(server, *rid))
            .collect();
        let acked = acks.iter().filter(|a| a.is_ok()).count();
        if let Some((server, Err(e))) = acks.iter().enumerate().find(|(_, a)| a.is_err()) {
            return Err(FsError::InvalidArgument(format!(
                "set_policy acknowledged by {acked}/{} servers; server {server} failed: {e}",
                self.links.len()
            )));
        }
        Ok(acks
            .into_iter()
            .map(|a| a.expect("checked above").1)
            .collect())
    }

    /// Queries the policy currently in force on one server, together with its
    /// policy epoch.
    pub fn get_policy(&self, server: usize) -> FsResult<(Policy, u64)> {
        let server = server % self.links.len();
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        self.links[server].send(ClientMessage::GetPolicy { request_id });
        self.recv_policy_ack(server, request_id)
    }

    // ----------------------------------------------------------- staging

    /// Waits for the `Stage` acknowledgement matching `request_id` on one
    /// server link, skipping unrelated traffic.
    fn recv_stage_ack(&self, server: usize, request_id: u64) -> FsResult<StageReply> {
        loop {
            match self.links[server].recv(self.timeout) {
                Some(ServerMessage::Stage {
                    request_id: rid,
                    reply,
                }) if rid == request_id => {
                    return match reply {
                        StageReply::Error(e) => Err(FsError::InvalidArgument(e)),
                        ok => Ok(ok),
                    };
                }
                Some(_) => continue,
                None => {
                    return Err(FsError::InvalidArgument(
                        "no staging acknowledgement from server (connection lost or timed out)"
                            .to_string(),
                    ))
                }
            }
        }
    }

    /// Forces the file's extents down to the capacity tier on **every**
    /// server holding a stripe of it (the flush is broadcast; dirty extents
    /// are server-local). Returns the capacity-tier bytes of the path once
    /// every server acknowledged — servers of a deployment share one
    /// capacity tier, so the maximum across acknowledgements is the path's
    /// staged size. Flushing a file that is already clean everywhere is a
    /// cheap no-op round-trip.
    ///
    /// The drain traffic a flush triggers is scheduled through the same
    /// policy engine as foreground I/O at the server's foreground:drain
    /// weight — a flush cannot starve other tenants.
    pub fn flush(&self, path: &str) -> FsResult<u64> {
        let bb_path = self.translate(path)?;
        let request_ids: Vec<u64> = (0..self.links.len())
            .map(|server| {
                let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
                self.links[server].send(ClientMessage::Flush {
                    request_id,
                    meta: self.meta,
                    path: bb_path.clone(),
                });
                request_id
            })
            .collect();
        let mut staged = 0u64;
        for (server, rid) in request_ids.iter().enumerate() {
            match self.recv_stage_ack(server, *rid)? {
                StageReply::Flushed { backing_bytes } => staged = staged.max(backing_bytes),
                other => {
                    return Err(FsError::InvalidArgument(format!(
                        "unexpected staging reply {other:?}"
                    )))
                }
            }
        }
        Ok(staged)
    }

    /// Restores the file's staged-out extents from the capacity tier,
    /// returning the total bytes copied back. The request is broadcast and
    /// each server restores exactly its own shard's evicted stripes, so the
    /// summed count is exact. A no-op (0) when everything is resident.
    pub fn stage_in(&self, path: &str) -> FsResult<u64> {
        let bb_path = self.translate(path)?;
        let request_ids: Vec<u64> = (0..self.links.len())
            .map(|server| {
                let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
                self.links[server].send(ClientMessage::StageIn {
                    request_id,
                    meta: self.meta,
                    path: bb_path.clone(),
                });
                request_id
            })
            .collect();
        let mut total = 0u64;
        for (server, rid) in request_ids.iter().enumerate() {
            match self.recv_stage_ack(server, *rid)? {
                StageReply::StagedIn { restored_bytes } => total += restored_bytes,
                other => {
                    return Err(FsError::InvalidArgument(format!(
                        "unexpected staging reply {other:?}"
                    )))
                }
            }
        }
        Ok(total)
    }

    /// Queries one server's staging state (dirty/resident/backing bytes,
    /// drain and eviction counters).
    pub fn drain_status(&self, server: usize) -> FsResult<DrainStatus> {
        let server = server % self.links.len();
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        self.links[server].send(ClientMessage::DrainStatus { request_id });
        match self.recv_stage_ack(server, request_id)? {
            StageReply::Status(status) => Ok(status),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected staging reply {other:?}"
            ))),
        }
    }

    /// Demands a full checksum-scrub pass over one server's share of the
    /// capacity tier and waits for it to complete, returning the post-pass
    /// [`ScrubStatus`] (verification counters plus the quarantined-extent
    /// list). Works even when the server's continuous background scrubber
    /// is disabled — the pass is forced. The scrub traffic is arbitrated by
    /// the policy engine at the server's foreground:scrub weight, so a
    /// demand scrub cannot starve other tenants.
    pub fn scrub(&self, server: usize) -> FsResult<ScrubStatus> {
        let server = server % self.links.len();
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        self.links[server].send(ClientMessage::Scrub { request_id });
        match self.recv_stage_ack(server, request_id)? {
            StageReply::Scrub(status) => Ok(status),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected staging reply {other:?}"
            ))),
        }
    }

    /// Queries one server's scrub state without forcing a pass.
    pub fn scrub_status(&self, server: usize) -> FsResult<ScrubStatus> {
        let server = server % self.links.len();
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        self.links[server].send(ClientMessage::ScrubStatus { request_id });
        match self.recv_stage_ack(server, request_id)? {
            StageReply::Scrub(status) => Ok(status),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected staging reply {other:?}"
            ))),
        }
    }

    /// Queries one server's rebalance state: the sharded tier's map and
    /// generation convergence plus the migration counters. On a server with
    /// an unsharded capacity tier the reply reports `sharded: false`.
    pub fn rebalance_status(&self, server: usize) -> FsResult<RebalanceStatus> {
        let server = server % self.links.len();
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        self.links[server].send(ClientMessage::RebalanceStatus { request_id });
        match self.recv_stage_ack(server, request_id)? {
            StageReply::Rebalance(status) => Ok(status),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected staging reply {other:?}"
            ))),
        }
    }

    /// Queries one server's durability-replication state: the replication
    /// lag (bytes acked but not yet replicated), landed replica counters,
    /// and the `sync` acks still parked. With no durability spec in force
    /// the reply reports `enabled: false` with zero lag.
    pub fn replicate_status(&self, server: usize) -> FsResult<ReplicateStatus> {
        let server = server % self.links.len();
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        self.links[server].send(ClientMessage::ReplicateStatus { request_id });
        match self.recv_stage_ack(server, request_id)? {
            StageReply::Replicate(status) => Ok(status),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected staging reply {other:?}"
            ))),
        }
    }

    /// Cuts a live metrics snapshot: per-tenant completion series, per-class
    /// lane counters, scrub/drain/restore progress and capacity gauges. The
    /// deployment's servers share one registry, so the snapshot answered by
    /// `server` covers the whole cluster (only that server's *gauges* are
    /// refreshed at the instant of the cut; peers refresh theirs on their
    /// own snapshots).
    pub fn metrics_snapshot(&self, server: usize) -> FsResult<MetricsSnapshot> {
        let server = server % self.links.len();
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        self.links[server].send(ClientMessage::MetricsSnapshot { request_id });
        match self.recv_stage_ack(server, request_id)? {
            StageReply::Metrics(snapshot) => Ok(snapshot),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected staging reply {other:?}"
            ))),
        }
    }

    /// Dumps the newest `max_events` scheduler decisions (admissions, lane
    /// selections with their virtual times, parks and wakes) of one server.
    /// Empty when the telemetry crate's `trace` feature is compiled out.
    pub fn trace_dump(&self, server: usize, max_events: u64) -> FsResult<TraceDump> {
        let server = server % self.links.len();
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        self.links[server].send(ClientMessage::TraceDump {
            request_id,
            max_events,
        });
        match self.recv_stage_ack(server, request_id)? {
            StageReply::Trace(dump) => Ok(dump),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected staging reply {other:?}"
            ))),
        }
    }

    /// Sends one heartbeat to every server so the job monitor keeps the job
    /// active.
    pub fn heartbeat(&self, now_ns: u64) {
        for link in &self.links {
            link.send(ClientMessage::Heartbeat {
                meta: self.meta,
                sent_ns: now_ns,
            });
            let _ = link.recv(self.timeout);
        }
    }

    /// Notifies every server that the client is going away.
    pub fn bye(&self) {
        for link in &self.links {
            link.send(ClientMessage::Bye { meta: self.meta });
        }
    }

    fn server_for_path(&self, path: &str) -> usize {
        (stable_hash(path) % self.links.len() as u64) as usize
    }

    fn roundtrip(&self, server: usize, op: FsOp) -> FsResult<FsReply> {
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        self.links[server].send(ClientMessage::Io {
            request_id,
            meta: self.meta,
            op,
        });
        loop {
            match self.links[server].recv(self.timeout) {
                Some(ServerMessage::IoReply {
                    request_id: rid,
                    reply,
                }) if rid == request_id => {
                    return match reply {
                        FsReply::Error(e) => Err(FsError::InvalidArgument(e)),
                        ok => Ok(ok),
                    };
                }
                Some(_) => continue,
                None => {
                    return Err(FsError::InvalidArgument(
                        "server connection lost".to_string(),
                    ))
                }
            }
        }
    }

    fn translate(&self, path: &str) -> FsResult<String> {
        self.namespace.translate(path).ok_or_else(|| {
            FsError::InvalidPath(format!("{path} is outside the ThemisIO namespace"))
        })
    }

    // ------------------------------------------------------ POSIX-style API

    /// `open(path, flags)` — returns a client-local descriptor.
    pub fn open(&self, path: &str, create: bool, truncate: bool, append: bool) -> FsResult<u64> {
        let bb_path = self.translate(path)?;
        let server = self.server_for_path(&bb_path);
        match self.roundtrip(
            server,
            FsOp::Open {
                path: bb_path,
                create,
                truncate,
                append,
            },
        )? {
            FsReply::Fd(remote) => {
                let local = self.next_local_fd.fetch_add(1, Ordering::Relaxed);
                self.fds.lock().insert(local, (server, remote));
                Ok(local)
            }
            other => Err(FsError::InvalidArgument(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }

    fn lookup_fd(&self, fd: u64) -> FsResult<(usize, u64)> {
        self.fds
            .lock()
            .get(&fd)
            .copied()
            .ok_or(FsError::BadDescriptor(fd))
    }

    /// `close(fd)`.
    pub fn close(&self, fd: u64) -> FsResult<()> {
        let (server, remote) = self.lookup_fd(fd)?;
        self.roundtrip(server, FsOp::Close { fd: remote })?;
        self.fds.lock().remove(&fd);
        Ok(())
    }

    /// `write(fd, data)` at the descriptor cursor.
    pub fn write(&self, fd: u64, data: &[u8]) -> FsResult<u64> {
        let (server, remote) = self.lookup_fd(fd)?;
        match self.roundtrip(
            server,
            FsOp::Write {
                fd: remote,
                data: data.to_vec(),
            },
        )? {
            FsReply::Count(n) => Ok(n),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }

    /// `read(fd, len)` at the descriptor cursor.
    pub fn read(&self, fd: u64, len: u64) -> FsResult<Vec<u8>> {
        let (server, remote) = self.lookup_fd(fd)?;
        match self.roundtrip(server, FsOp::Read { fd: remote, len })? {
            FsReply::Data(d) => Ok(d),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }

    /// `lseek(fd, offset, whence)` with whence 0=SET, 1=CUR, 2=END.
    pub fn lseek(&self, fd: u64, offset: i64, whence: u8) -> FsResult<u64> {
        let (server, remote) = self.lookup_fd(fd)?;
        match self.roundtrip(
            server,
            FsOp::Seek {
                fd: remote,
                offset,
                whence,
            },
        )? {
            FsReply::Count(n) => Ok(n),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }

    /// Positional write that does not need an open descriptor.
    pub fn write_at(&self, path: &str, offset: u64, data: &[u8]) -> FsResult<u64> {
        let bb_path = self.translate(path)?;
        let server = self.server_for_path(&bb_path);
        match self.roundtrip(
            server,
            FsOp::WriteAt {
                path: bb_path,
                offset,
                data: data.to_vec(),
            },
        )? {
            FsReply::Count(n) => Ok(n),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }

    /// Positional read that does not need an open descriptor.
    pub fn read_at(&self, path: &str, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        let bb_path = self.translate(path)?;
        let server = self.server_for_path(&bb_path);
        match self.roundtrip(
            server,
            FsOp::ReadAt {
                path: bb_path,
                offset,
                len,
            },
        )? {
            FsReply::Data(d) => Ok(d),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }

    /// `stat(path)`.
    pub fn stat(&self, path: &str) -> FsResult<StatInfo> {
        let bb_path = self.translate(path)?;
        let server = self.server_for_path(&bb_path);
        match self.roundtrip(server, FsOp::Stat { path: bb_path })? {
            FsReply::Stat(s) => Ok(s),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }

    /// `mkdir -p path`.
    pub fn mkdir_all(&self, path: &str) -> FsResult<()> {
        let bb_path = self.translate(path)?;
        let server = self.server_for_path(&bb_path);
        self.roundtrip(server, FsOp::Mkdir { path: bb_path })
            .map(|_| ())
    }

    /// `opendir` + `readdir` in one call.
    pub fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        let bb_path = self.translate(path)?;
        let server = self.server_for_path(&bb_path);
        match self.roundtrip(server, FsOp::Readdir { path: bb_path })? {
            FsReply::Entries(e) => Ok(e),
            other => Err(FsError::InvalidArgument(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }

    /// `unlink(path)` / `rmdir(path)`.
    pub fn unlink(&self, path: &str) -> FsResult<()> {
        let bb_path = self.translate(path)?;
        let server = self.server_for_path(&bb_path);
        self.roundtrip(server, FsOp::Unlink { path: bb_path })
            .map(|_| ())
    }

    /// Creates a file striped over `stripe_count` servers.
    pub fn create_striped(
        &self,
        path: &str,
        stripe_size: u64,
        stripe_count: usize,
    ) -> FsResult<()> {
        let bb_path = self.translate(path)?;
        let server = self.server_for_path(&bb_path);
        self.roundtrip(
            server,
            FsOp::CreateStriped {
                path: bb_path,
                stripe: StripeConfig::new(stripe_size, stripe_count),
            },
        )
        .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::VecDeque;

    #[test]
    fn namespace_translation() {
        let ns = Namespace::default_fs();
        assert!(ns.intercepts("/fs/run1/out.dat"));
        assert!(!ns.intercepts("/home/user/out.dat"));
        assert_eq!(ns.translate("/fs/run1/out.dat").unwrap(), "/run1/out.dat");
        assert_eq!(ns.translate("/scratch/x"), None);
        let custom = Namespace::new("/bb");
        assert!(custom.intercepts("/bb/x"));
        assert!(!custom.intercepts("/fs/x"));
    }

    /// A loopback link that records messages and replies with canned answers,
    /// enough to test routing, request/response matching, and the policy
    /// control plane.
    struct MockLink {
        inbox: Mutex<VecDeque<ServerMessage>>,
        sent: Mutex<Vec<ClientMessage>>,
        policy: Mutex<(Policy, u64)>,
    }

    impl MockLink {
        fn new() -> Self {
            MockLink {
                inbox: Mutex::new(VecDeque::new()),
                sent: Mutex::new(Vec::new()),
                policy: Mutex::new((Policy::size_fair(), 0)),
            }
        }
    }

    impl ServerLink for MockLink {
        fn send(&self, msg: ClientMessage) {
            // Auto-reply to IO with a canned response echoing the request id.
            let reply = match &msg {
                ClientMessage::Io { request_id, op, .. } => Some(ServerMessage::IoReply {
                    request_id: *request_id,
                    reply: match op {
                        FsOp::Open { .. } => FsReply::Fd(77),
                        FsOp::Write { data, .. } => FsReply::Count(data.len() as u64),
                        FsOp::Read { len, .. } => FsReply::Data(vec![0u8; *len as usize]),
                        FsOp::Stat { .. } => FsReply::Error("no such file".into()),
                        _ => FsReply::Ok,
                    },
                }),
                ClientMessage::Hello { .. } | ClientMessage::Heartbeat { .. } => {
                    let p = self.policy.lock();
                    Some(ServerMessage::Ack {
                        policy: p.0.to_string(),
                        epoch: p.1,
                    })
                }
                ClientMessage::SetPolicy { request_id, policy } => {
                    let mut p = self.policy.lock();
                    p.0 = policy.clone();
                    p.1 += 1;
                    Some(ServerMessage::PolicyChanged {
                        request_id: *request_id,
                        policy: p.0.clone(),
                        epoch: p.1,
                    })
                }
                ClientMessage::GetPolicy { request_id } => {
                    let p = self.policy.lock();
                    Some(ServerMessage::PolicyChanged {
                        request_id: *request_id,
                        policy: p.0.clone(),
                        epoch: p.1,
                    })
                }
                ClientMessage::Flush { request_id, .. } => Some(ServerMessage::Stage {
                    request_id: *request_id,
                    reply: StageReply::Flushed { backing_bytes: 64 },
                }),
                ClientMessage::StageIn { request_id, .. } => Some(ServerMessage::Stage {
                    request_id: *request_id,
                    reply: StageReply::StagedIn { restored_bytes: 64 },
                }),
                ClientMessage::DrainStatus { request_id } => Some(ServerMessage::Stage {
                    request_id: *request_id,
                    reply: StageReply::Status(DrainStatus::default()),
                }),
                ClientMessage::Scrub { request_id } => Some(ServerMessage::Stage {
                    request_id: *request_id,
                    reply: StageReply::Scrub(ScrubStatus {
                        passes_completed: 1,
                        scrubbed_extents: 4,
                        ..ScrubStatus::default()
                    }),
                }),
                ClientMessage::ScrubStatus { request_id } => Some(ServerMessage::Stage {
                    request_id: *request_id,
                    reply: StageReply::Scrub(ScrubStatus::default()),
                }),
                ClientMessage::RebalanceStatus { request_id } => Some(ServerMessage::Stage {
                    request_id: *request_id,
                    reply: StageReply::Rebalance(RebalanceStatus {
                        sharded: true,
                        migrated_extents: 7,
                        ..RebalanceStatus::default()
                    }),
                }),
                ClientMessage::ReplicateStatus { request_id } => Some(ServerMessage::Stage {
                    request_id: *request_id,
                    reply: StageReply::Replicate(ReplicateStatus {
                        enabled: true,
                        replicated_extents: 3,
                        ..ReplicateStatus::default()
                    }),
                }),
                ClientMessage::MetricsSnapshot { request_id } => Some(ServerMessage::Stage {
                    request_id: *request_id,
                    reply: StageReply::Metrics(themis_telemetry::MetricsSnapshot::default()),
                }),
                ClientMessage::TraceDump { request_id, .. } => Some(ServerMessage::Stage {
                    request_id: *request_id,
                    reply: StageReply::Trace(themis_telemetry::TraceDump::default()),
                }),
                ClientMessage::Bye { .. } => None,
            };
            self.sent.lock().push(msg);
            if let Some(r) = reply {
                self.inbox.lock().push_back(r);
            }
        }

        fn recv(&self, _timeout: Duration) -> Option<ServerMessage> {
            self.inbox.lock().pop_front()
        }
    }

    fn client(n_links: usize) -> ThemisClient<MockLink> {
        let links = (0..n_links).map(|_| MockLink::new()).collect();
        ThemisClient::new(
            JobMeta::new(1u64, 2u32, 3u32, 4),
            links,
            Namespace::default_fs(),
        )
    }

    #[test]
    fn hello_reports_policies_from_all_servers() {
        let c = client(3);
        assert_eq!(c.hello(), vec!["size-fair"; 3]);
        assert_eq!(c.server_count(), 3);
    }

    #[test]
    fn descriptor_ops_stick_to_the_opening_server() {
        let c = client(4);
        let fd = c.open("/fs/data/file", true, true, false).unwrap();
        assert_eq!(c.write(fd, &[1, 2, 3]).unwrap(), 3);
        assert_eq!(c.read(fd, 8).unwrap().len(), 8);
        c.close(fd).unwrap();
        // All four messages (open/write/read/close) went to the same link.
        let busy: Vec<usize> = (0..4)
            .filter(|i| !c.links[*i].sent.lock().is_empty())
            .collect();
        assert_eq!(busy.len(), 1);
        assert_eq!(c.links[busy[0]].sent.lock().len(), 4);
    }

    #[test]
    fn paths_outside_namespace_are_rejected() {
        let c = client(2);
        assert!(matches!(
            c.open("/home/user/x", true, false, false),
            Err(FsError::InvalidPath(_))
        ));
    }

    #[test]
    fn errors_are_surfaced() {
        let c = client(2);
        assert!(c.stat("/fs/missing").is_err());
    }

    #[test]
    fn set_policy_reaches_every_server_and_bumps_epochs() {
        let c = client(3);
        let weighted: Policy = "user[2]-then-size-fair".parse().unwrap();
        let epochs = c.set_policy(&weighted).unwrap();
        assert_eq!(epochs, vec![1, 1, 1]);
        for i in 0..3 {
            let (p, e) = c.get_policy(i).unwrap();
            assert_eq!(p, weighted);
            assert_eq!(e, 1);
        }
        // A second swap bumps the epoch again and hello reports the new DSL
        // string.
        let epochs = c.set_policy(&Policy::job_fair()).unwrap();
        assert_eq!(epochs, vec![2, 2, 2]);
        assert_eq!(c.hello(), vec!["job-fair"; 3]);
    }

    #[test]
    fn staging_calls_broadcast_and_aggregate() {
        let c = client(3);
        // Flush and stage-in go to every server (dirty extents are
        // server-local). Flush reports the path's staged size (max across
        // the shared tier's acknowledgements); stage-in sums the bytes each
        // server actually restored.
        assert_eq!(c.flush("/fs/data/ckpt").unwrap(), 64);
        assert_eq!(c.stage_in("/fs/data/ckpt").unwrap(), 3 * 64);
        for link in &c.links {
            let sent = link.sent.lock();
            assert!(sent
                .iter()
                .any(|m| matches!(m, ClientMessage::Flush { path, .. } if path == "/data/ckpt")));
            assert!(sent
                .iter()
                .any(|m| matches!(m, ClientMessage::StageIn { path, .. } if path == "/data/ckpt")));
        }
        // Status targets one server.
        let status = c.drain_status(1).unwrap();
        assert!(status.is_clean());
        assert!(matches!(
            c.flush("/home/not-intercepted"),
            Err(FsError::InvalidPath(_))
        ));
    }

    #[test]
    fn scrub_calls_target_one_server() {
        let c = client(3);
        // A demand scrub waits for the pass and returns its counters…
        let status = c.scrub(1).unwrap();
        assert_eq!(status.passes_completed, 1);
        assert_eq!(status.scrubbed_extents, 4);
        assert!(status.is_healthy());
        // …and a status query is an immediate snapshot.
        let status = c.scrub_status(2).unwrap();
        assert_eq!(status.passes_completed, 0);
        // Only the targeted links saw traffic.
        assert!(c.links[0].sent.lock().is_empty());
        assert!(c.links[1]
            .sent
            .lock()
            .iter()
            .any(|m| matches!(m, ClientMessage::Scrub { .. })));
        assert!(c.links[2]
            .sent
            .lock()
            .iter()
            .any(|m| matches!(m, ClientMessage::ScrubStatus { .. })));
    }

    #[test]
    fn rebalance_status_targets_one_server() {
        let c = client(2);
        let status = c.rebalance_status(1).unwrap();
        assert!(status.sharded);
        assert_eq!(status.migrated_extents, 7);
        assert!(c.links[0].sent.lock().is_empty());
        assert!(c.links[1]
            .sent
            .lock()
            .iter()
            .any(|m| matches!(m, ClientMessage::RebalanceStatus { .. })));
    }

    #[test]
    fn replicate_status_targets_one_server() {
        let c = client(2);
        let status = c.replicate_status(1).unwrap();
        assert!(status.enabled);
        assert_eq!(status.replicated_extents, 3);
        assert!(status.is_idle());
        assert!(c.links[0].sent.lock().is_empty());
        assert!(c.links[1]
            .sent
            .lock()
            .iter()
            .any(|m| matches!(m, ClientMessage::ReplicateStatus { .. })));
    }

    #[test]
    #[should_panic(expected = "reserved system job-id range")]
    fn reserved_job_id_is_rejected_at_construction() {
        // The same boundary the server enforces (themis_core's
        // RESERVED_JOB_BASE): a client claiming a reserved id fails fast.
        let meta = JobMeta::new(themis_core::entity::RESERVED_JOB_BASE, 2u32, 3u32, 4);
        let _ = ThemisClient::new(meta, vec![MockLink::new()], Namespace::default_fs());
    }

    #[test]
    fn bad_descriptor_is_detected_client_side() {
        let c = client(1);
        assert!(matches!(c.write(99, &[0]), Err(FsError::BadDescriptor(99))));
        assert!(matches!(c.close(99), Err(FsError::BadDescriptor(99))));
    }
}
