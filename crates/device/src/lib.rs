//! # themis-device
//!
//! A parameterised storage-device model standing in for the Intel Optane /
//! NVMe devices of the paper's burst-buffer nodes.
//!
//! The paper's experiments arbitrate a *fixed per-server I/O capacity*
//! (~22 GB/s combined read+write per server, §1/§5.2); what matters for the
//! reproduction is that serving one request consumes a predictable amount of
//! device time so the scheduler's choice of *which* request to serve
//! determines per-job throughput. [`DeviceModel`] converts a request into a
//! service duration, and [`DeviceTimeline`] tracks when a server's device is
//! next free, which is all the simulator needs to replay the paper's
//! experiments and all the threaded runtime needs to pace a real deployment.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use themis_core::request::{IoRequest, OpKind};

/// Nanoseconds per second, used in conversions.
pub const NS_PER_SEC: f64 = 1e9;

/// Device/service parameters of one burst-buffer server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Sustained write bandwidth in bytes/second.
    pub write_bw_bytes_per_sec: f64,
    /// Sustained read bandwidth in bytes/second.
    pub read_bw_bytes_per_sec: f64,
    /// Fixed per-request overhead in nanoseconds (submission, protocol
    /// handling, interrupt) charged to every operation.
    pub per_op_overhead_ns: u64,
    /// Service time of a pure metadata operation (open/stat/readdir/...)
    /// in nanoseconds.
    pub metadata_op_ns: u64,
    /// Number of I/O workers the server runs (§4.1: "There can be multiple
    /// workers for higher I/O throughput"). Workers share the device
    /// bandwidth but allow request overheads to overlap.
    pub workers: usize,
}

impl Default for DeviceConfig {
    /// Defaults calibrated to the paper's testbed: one ThemisIO server
    /// sustains ≈11.7 GB/s unidirectional (Fig. 7) and ≈22 GB/s combined
    /// read+write (§1), with microsecond-scale per-request latency (§5.3.1:
    /// "The actual response time of each I/O operation is on the order of
    /// 1 microsecond").
    fn default() -> Self {
        DeviceConfig {
            write_bw_bytes_per_sec: 11.7e9,
            read_bw_bytes_per_sec: 11.7e9,
            per_op_overhead_ns: 1_000,
            metadata_op_ns: 3_000,
            workers: 4,
        }
    }
}

impl DeviceConfig {
    /// The burst-buffer tier preset: one server's Intel Optane SSD array as
    /// measured in the paper — ≈11.7 GB/s unidirectional (Fig. 7) and
    /// **≈22 GB/s combined read+write per server** (§1/§5.2), with
    /// microsecond-scale per-request latency (§5.3.1). Identical to
    /// [`DeviceConfig::default`]; the named preset exists so experiment code
    /// says *which tier* it is configuring instead of repeating literals.
    pub fn optane_ssd() -> Self {
        DeviceConfig::default()
    }

    /// The capacity tier preset: one server's slice of a disk-based parallel
    /// file system behind the burst buffer (the stage-out target). Bandwidth
    /// is a small fraction of the paper's ~22 GB/s-per-server burst-buffer
    /// figure — roughly what an HDD-backed Lustre OST delivers per client —
    /// with per-op overheads two orders of magnitude above NVMe. Draining at
    /// this speed is what makes the foreground:drain weight matter.
    pub fn capacity_hdd() -> Self {
        DeviceConfig {
            write_bw_bytes_per_sec: 2.0e9,
            read_bw_bytes_per_sec: 2.0e9,
            per_op_overhead_ns: 100_000,
            metadata_op_ns: 500_000,
            workers: 2,
        }
    }

    /// A slower device profile (useful for tests and for modelling an
    /// HDD-backed or saturated external file system).
    pub fn slow() -> Self {
        DeviceConfig {
            write_bw_bytes_per_sec: 1.0e9,
            read_bw_bytes_per_sec: 1.0e9,
            per_op_overhead_ns: 10_000,
            metadata_op_ns: 50_000,
            workers: 1,
        }
    }

    /// Scales both bandwidths by `factor` (used for heterogeneity studies).
    pub fn scaled(mut self, factor: f64) -> Self {
        let f = if factor.is_finite() && factor > 0.0 {
            factor
        } else {
            1.0
        };
        self.write_bw_bytes_per_sec *= f;
        self.read_bw_bytes_per_sec *= f;
        self
    }

    /// Combined (read+write) nominal bandwidth in bytes/second.
    pub fn combined_bw(&self) -> f64 {
        self.read_bw_bytes_per_sec + self.write_bw_bytes_per_sec
    }
}

/// Converts requests into service durations for one server's device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    config: DeviceConfig,
}

impl DeviceModel {
    /// Creates a model from a configuration.
    pub fn new(config: DeviceConfig) -> Self {
        DeviceModel { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Service duration of `request` in nanoseconds, excluding queueing.
    ///
    /// Workers share the device: each of the `workers` streams sustains
    /// `bandwidth / workers`, so the aggregate across all busy workers never
    /// exceeds the device bandwidth.
    pub fn service_ns(&self, request: &IoRequest) -> u64 {
        let share = self.config.workers.max(1) as f64;
        let transfer_ns = match request.kind {
            OpKind::Write => {
                request.bytes as f64 / (self.config.write_bw_bytes_per_sec / share) * NS_PER_SEC
            }
            OpKind::Read => {
                request.bytes as f64 / (self.config.read_bw_bytes_per_sec / share) * NS_PER_SEC
            }
            _ => self.config.metadata_op_ns as f64,
        };
        let transfer_ns = if transfer_ns.is_finite() && transfer_ns > 0.0 {
            transfer_ns as u64
        } else {
            0
        };
        self.config.per_op_overhead_ns + transfer_ns
    }

    /// The theoretical maximum throughput (bytes/second) for a stream of
    /// same-kind requests of `bytes` payload each — useful for calibrating
    /// experiment expectations.
    pub fn peak_throughput(&self, kind: OpKind, bytes: u64) -> f64 {
        let bw = match kind {
            OpKind::Write => self.config.write_bw_bytes_per_sec,
            OpKind::Read => self.config.read_bw_bytes_per_sec,
            _ => return 0.0,
        };
        let share = self.config.workers.max(1) as f64;
        let per_req_ns =
            bytes as f64 / (bw / share) * NS_PER_SEC + self.config.per_op_overhead_ns as f64;
        share * bytes as f64 / (per_req_ns / NS_PER_SEC)
    }
}

/// Tracks the busy/idle timeline of one server's device across its workers.
///
/// The timeline is the minimal state a discrete-event simulation needs: for
/// each worker, the time at which it becomes free. Dispatching a request
/// assigns it to the earliest-free worker and returns the `(start, finish)`
/// service interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceTimeline {
    model: DeviceModel,
    worker_free_at: Vec<u64>,
    busy_ns_total: u64,
    bytes_written: u64,
    bytes_read: u64,
    ops: u64,
}

impl DeviceTimeline {
    /// Creates an idle timeline for a device with the given model.
    pub fn new(model: DeviceModel) -> Self {
        let workers = model.config().workers.max(1);
        DeviceTimeline {
            model,
            worker_free_at: vec![0; workers],
            busy_ns_total: 0,
            bytes_written: 0,
            bytes_read: 0,
            ops: 0,
        }
    }

    /// The device model in use.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    /// The earliest time any worker is free.
    pub fn next_free_ns(&self) -> u64 {
        self.worker_free_at.iter().copied().min().unwrap_or(0)
    }

    /// Whether at least one worker is idle at `now_ns`.
    pub fn has_idle_worker(&self, now_ns: u64) -> bool {
        self.worker_free_at.iter().any(|&t| t <= now_ns)
    }

    /// Number of workers currently busy at `now_ns`.
    pub fn busy_workers(&self, now_ns: u64) -> usize {
        self.worker_free_at.iter().filter(|&&t| t > now_ns).count()
    }

    /// Dispatches `request` at `now_ns`: the earliest-free worker starts the
    /// request as soon as it is both free and the request has arrived, and
    /// the service interval `(start_ns, finish_ns)` is returned.
    pub fn dispatch(&mut self, request: &IoRequest, now_ns: u64) -> (u64, u64) {
        let service = self.model.service_ns(request);
        let idx = self
            .worker_free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one worker");
        let start = self.worker_free_at[idx].max(now_ns);
        let finish = start + service;
        self.worker_free_at[idx] = finish;
        self.busy_ns_total += service;
        self.ops += 1;
        match request.kind {
            OpKind::Write => self.bytes_written += request.bytes,
            OpKind::Read => self.bytes_read += request.bytes,
            _ => {}
        }
        (start, finish)
    }

    /// Total bytes written through this device.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read through this device.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total operations dispatched.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Device utilisation over `[0, horizon_ns]`: busy time divided by
    /// available worker time.
    pub fn utilisation(&self, horizon_ns: u64) -> f64 {
        if horizon_ns == 0 {
            return 0.0;
        }
        let capacity = horizon_ns as f64 * self.worker_free_at.len() as f64;
        (self.busy_ns_total as f64 / capacity).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_core::entity::JobMeta;

    fn req(kind: OpKind, bytes: u64) -> IoRequest {
        IoRequest::new(0, JobMeta::new(1u64, 1u32, 1u32, 1), kind, bytes, 0)
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let c = DeviceConfig::default();
        assert!((c.combined_bw() - 23.4e9).abs() < 1e6);
    }

    #[test]
    fn tier_presets_are_ordered() {
        // The burst-buffer preset is the paper-calibrated default; the
        // capacity preset is markedly slower in bandwidth and per-op cost.
        assert_eq!(DeviceConfig::optane_ssd(), DeviceConfig::default());
        let hdd = DeviceConfig::capacity_hdd();
        assert!(hdd.combined_bw() < DeviceConfig::optane_ssd().combined_bw() / 4.0);
        assert!(hdd.per_op_overhead_ns > DeviceConfig::optane_ssd().per_op_overhead_ns);
    }

    #[test]
    fn service_time_scales_with_size_and_kind() {
        let m = DeviceModel::new(DeviceConfig {
            write_bw_bytes_per_sec: 1e9,
            read_bw_bytes_per_sec: 2e9,
            per_op_overhead_ns: 100,
            metadata_op_ns: 500,
            workers: 1,
        });
        // 1 MB write at 1 GB/s = 1 ms.
        assert_eq!(m.service_ns(&req(OpKind::Write, 1_000_000)), 1_000_100);
        // Same read at 2 GB/s = 0.5 ms.
        assert_eq!(m.service_ns(&req(OpKind::Read, 1_000_000)), 500_100);
        // Metadata op charged the fixed cost.
        assert_eq!(m.service_ns(&req(OpKind::Stat, 0)), 600);
        // Zero-byte data op still pays the overhead.
        assert_eq!(m.service_ns(&req(OpKind::Write, 0)), 100);
    }

    #[test]
    fn peak_throughput_approaches_bandwidth_for_large_blocks() {
        let m = DeviceModel::new(DeviceConfig::default());
        let tp = m.peak_throughput(OpKind::Write, 1 << 20);
        assert!(tp > 0.9 * 11.7e9 && tp <= 11.7e9, "throughput {tp}");
        assert_eq!(m.peak_throughput(OpKind::Stat, 0), 0.0);
    }

    #[test]
    fn scaled_config_multiplies_bandwidth() {
        let c = DeviceConfig::default().scaled(2.0);
        assert!((c.write_bw_bytes_per_sec - 23.4e9).abs() < 1e6);
        let unchanged = DeviceConfig::default().scaled(f64::NAN);
        assert_eq!(unchanged.write_bw_bytes_per_sec, 11.7e9);
    }

    #[test]
    fn timeline_serialises_requests_on_one_worker() {
        let cfg = DeviceConfig {
            write_bw_bytes_per_sec: 1e9,
            read_bw_bytes_per_sec: 1e9,
            per_op_overhead_ns: 0,
            metadata_op_ns: 0,
            workers: 1,
        };
        let mut t = DeviceTimeline::new(DeviceModel::new(cfg));
        let (s1, f1) = t.dispatch(&req(OpKind::Write, 1_000_000), 0);
        let (s2, f2) = t.dispatch(&req(OpKind::Write, 1_000_000), 0);
        assert_eq!((s1, f1), (0, 1_000_000));
        assert_eq!((s2, f2), (1_000_000, 2_000_000));
        assert_eq!(t.next_free_ns(), 2_000_000);
        assert_eq!(t.bytes_written(), 2_000_000);
        assert_eq!(t.ops(), 2);
        assert!((t.utilisation(2_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_overlaps_across_workers() {
        let cfg = DeviceConfig {
            write_bw_bytes_per_sec: 1e9,
            read_bw_bytes_per_sec: 1e9,
            per_op_overhead_ns: 0,
            metadata_op_ns: 0,
            workers: 2,
        };
        let mut t = DeviceTimeline::new(DeviceModel::new(cfg));
        // Two workers each sustain half the device bandwidth: a 1 MB write
        // takes 2 ms per stream, but two run concurrently, so the aggregate
        // is still 1 GB/s.
        let (_, f1) = t.dispatch(&req(OpKind::Write, 1_000_000), 0);
        let (s2, f2) = t.dispatch(&req(OpKind::Write, 1_000_000), 0);
        assert_eq!(f1, 2_000_000);
        assert_eq!(s2, 0);
        assert_eq!(f2, 2_000_000);
        assert!(t.has_idle_worker(2_000_000));
        assert_eq!(t.busy_workers(500_000), 2);
        assert!((t.utilisation(2_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dispatch_waits_for_arrival_time() {
        let mut t = DeviceTimeline::new(DeviceModel::new(DeviceConfig {
            write_bw_bytes_per_sec: 1e9,
            read_bw_bytes_per_sec: 1e9,
            per_op_overhead_ns: 0,
            metadata_op_ns: 0,
            workers: 1,
        }));
        let (s, _) = t.dispatch(&req(OpKind::Write, 1_000), 5_000);
        assert_eq!(s, 5_000);
    }
}
