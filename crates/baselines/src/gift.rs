//! The GIFT baseline (Patel et al., FAST '20), re-implemented the way §5.4
//! describes: the BSIP (Basic Synchronous I/O Progress) equal-share
//! allocation plus the coupon-based throttle-and-reward redistribution,
//! integrated with ThemisIO's request-queue machinery instead of Linux
//! cgroups.
//!
//! GIFT recomputes bandwidth allocations every `μ` interval from the pending
//! request queues. Within an interval every backlogged job may consume at
//! most its allocated byte budget; a job that cannot use its share is
//! throttled and earns *coupons* that increase its budget in later intervals
//! (the "reward"). Because budgets only change at interval boundaries, GIFT
//! reacts more slowly than ThemisIO's per-request statistical tokens — this
//! is exactly the behaviour responsible for the lower sustained throughput
//! and higher variance in Fig. 12(b).

use rand::RngCore;
use std::collections::{BTreeMap, BTreeSet};
use themis_core::entity::JobId;
use themis_core::job_table::JobTable;
use themis_core::policy::Policy;
use themis_core::request::{Completion, IoRequest};
use themis_core::sched::{JobQueues, Scheduler};
use themis_core::shares::ShareMap;

/// Tuning parameters of the GIFT reference implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GiftConfig {
    /// Allocation interval μ in nanoseconds. The GIFT paper defaults to 10 s;
    /// §5.4 found 0.5 s appropriate for a burst-buffer deployment, so that is
    /// the default here.
    pub interval_ns: u64,
    /// Estimated server capacity in bytes per interval — the bandwidth pool
    /// the LP distributes. Defaults to 22 GB/s × 0.5 s.
    pub bytes_per_interval: u64,
    /// Fraction of a throttled job's unused allocation converted into
    /// coupons redeemable in later intervals.
    pub coupon_rate: f64,
    /// Cap on accumulated coupons, as a multiple of one interval's fair
    /// share, so the reward cannot starve other jobs indefinitely.
    pub max_coupon_intervals: f64,
}

impl Default for GiftConfig {
    fn default() -> Self {
        GiftConfig {
            interval_ns: 500_000_000,
            bytes_per_interval: 11_000_000_000, // 22 GB/s * 0.5 s
            coupon_rate: 1.0,
            max_coupon_intervals: 2.0,
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct JobInterval {
    /// Byte budget allocated for the current interval.
    budget: u64,
    /// Bytes dispatched in the current interval.
    used: u64,
    /// Outstanding coupons (bytes) earned from earlier throttled intervals.
    coupons: f64,
    /// Whether the job was backlogged at the start of the interval.
    backlogged: bool,
}

/// GIFT scheduler: interval-based equal-share allocation with coupons.
#[derive(Debug)]
pub struct GiftScheduler {
    config: GiftConfig,
    queues: JobQueues,
    state: BTreeMap<JobId, JobInterval>,
    interval_start_ns: u64,
    interval_initialised: bool,
    shares: ShareMap,
}

impl GiftScheduler {
    /// Creates a GIFT scheduler with the default configuration.
    pub fn new() -> Self {
        Self::with_config(GiftConfig::default())
    }

    /// Creates a GIFT scheduler with an explicit configuration.
    pub fn with_config(config: GiftConfig) -> Self {
        GiftScheduler {
            config,
            queues: JobQueues::new(),
            state: BTreeMap::new(),
            interval_start_ns: 0,
            interval_initialised: false,
            shares: ShareMap::empty(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GiftConfig {
        &self.config
    }

    /// Outstanding coupons of one job, in bytes.
    pub fn coupons(&self, job: JobId) -> f64 {
        self.state.get(&job).map_or(0.0, |s| s.coupons)
    }

    /// (Re)computes per-job budgets at an interval boundary: the BSIP equal
    /// split of the interval's byte pool across backlogged jobs, plus coupon
    /// redemption, with the unused share of idle jobs redistributed among the
    /// backlogged ones (the proportional-redistribution solution of GIFT's
    /// LP for the single-server case).
    fn begin_interval(&mut self, now_ns: u64) {
        // Settle the interval that just ended: backlogged jobs that were
        // throttled below their budget earn coupons.
        if self.interval_initialised {
            let fair = if self.state.is_empty() {
                0.0
            } else {
                self.config.bytes_per_interval as f64 / self.state.len() as f64
            };
            let cap = self.config.max_coupon_intervals * fair;
            for st in self.state.values_mut() {
                if st.backlogged && st.used < st.budget {
                    let earned = (st.budget - st.used) as f64 * self.config.coupon_rate;
                    st.coupons = (st.coupons + earned).min(cap);
                }
                st.used = 0;
                st.budget = 0;
            }
        }

        self.interval_start_ns = now_ns - (now_ns % self.config.interval_ns.max(1));
        self.interval_initialised = true;

        // Set-based membership: `contains` is probed once per state row, so a
        // Vec scan here would be O(state × backlogged).
        let backlogged: BTreeSet<JobId> = self.queues.backlogged_unordered().collect();
        if backlogged.is_empty() {
            for st in self.state.values_mut() {
                st.backlogged = false;
            }
            return;
        }
        // Ensure state rows exist for every backlogged job (jobs seen through
        // traffic before a refresh).
        for j in &backlogged {
            self.state.entry(*j).or_default();
        }
        let pool = self.config.bytes_per_interval as f64;
        let equal = pool / backlogged.len() as f64;
        let mut share_pairs = Vec::with_capacity(backlogged.len());
        for (job, st) in self.state.iter_mut() {
            let is_backlogged = backlogged.contains(job);
            st.backlogged = is_backlogged;
            if is_backlogged {
                // Redeem coupons on top of the equal share.
                let redeem = st.coupons.min(equal);
                st.coupons -= redeem;
                st.budget = (equal + redeem) as u64;
                share_pairs.push((*job, equal + redeem));
            } else {
                st.budget = 0;
            }
        }
        self.shares = ShareMap::from_pairs(share_pairs);
    }

    fn interval_elapsed(&self, now_ns: u64) -> bool {
        !self.interval_initialised
            || now_ns.saturating_sub(self.interval_start_ns) >= self.config.interval_ns
    }
}

impl Default for GiftScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for GiftScheduler {
    fn name(&self) -> &'static str {
        "gift"
    }

    fn enqueue(&mut self, request: IoRequest) {
        self.state.entry(request.meta.job).or_default();
        self.queues.push(request);
    }

    fn next(&mut self, now_ns: u64, _rng: &mut dyn RngCore) -> Option<IoRequest> {
        if self.queues.is_empty() {
            return None;
        }
        if self.interval_elapsed(now_ns) {
            self.begin_interval(now_ns);
        }
        // Serve the backlogged job with the largest remaining budget
        // fraction; skip jobs whose budget is exhausted (throttling). The
        // sorted view keeps the `max_by_key` tie-break (last maximum wins)
        // deterministic.
        let state = &self.state;
        let candidate = self
            .queues
            .backlogged_sorted()
            .iter()
            .map(|&(job, _slot)| job)
            .filter_map(|job| {
                let st = state.get(&job)?;
                if st.budget == 0 || st.used >= st.budget {
                    None
                } else {
                    Some((job, st.budget - st.used))
                }
            })
            .max_by_key(|(_, remaining)| *remaining)
            .map(|(job, _)| job);
        let job = candidate?;
        let req = self.queues.pop(job)?;
        if let Some(st) = self.state.get_mut(&job) {
            st.used += req.bytes.max(1);
        }
        Some(req)
    }

    fn next_eligible_ns(&self, now_ns: u64) -> Option<u64> {
        if self.queues.is_empty() {
            None
        } else {
            // Throttled: nothing can be served before the next interval.
            Some(
                self.interval_start_ns
                    .saturating_add(self.config.interval_ns)
                    .max(now_ns),
            )
        }
    }

    fn on_complete(&mut self, _completion: &Completion) {}

    fn refresh(&mut self, table: &JobTable, _policy: &Policy) {
        // GIFT only supports job-fair sharing (§5.4); the policy argument is
        // ignored. Drop state rows of jobs that left the system. The active
        // set is probed once per state row, so it must support O(log n)
        // membership.
        let mut active: BTreeSet<JobId> = table.active_jobs().iter().map(|m| m.job).collect();
        active.extend(self.queues.backlogged_unordered());
        self.state.retain(|job, _| active.contains(job));
        for job in active {
            self.state.entry(job).or_default();
        }
    }

    fn queued(&self) -> usize {
        self.queues.len()
    }

    fn queued_for(&self, job: JobId) -> usize {
        self.queues.len_for(job)
    }

    fn backlogged_jobs(&self) -> Vec<JobId> {
        self.queues.backlogged()
    }

    fn shares(&self) -> ShareMap {
        self.shares.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use themis_core::entity::JobMeta;

    fn meta(job: u64) -> JobMeta {
        JobMeta::new(job, job as u32, 1u32, 1)
    }

    fn config_small() -> GiftConfig {
        GiftConfig {
            interval_ns: 1_000_000, // 1 ms
            bytes_per_interval: 10 * 1024,
            coupon_rate: 1.0,
            max_coupon_intervals: 2.0,
        }
    }

    #[test]
    fn equal_split_between_backlogged_jobs() {
        let mut g = GiftScheduler::with_config(config_small());
        let mut seq = 0;
        for _ in 0..20 {
            for j in [1u64, 2] {
                g.enqueue(IoRequest::write(seq, meta(j), 1024, 0));
                seq += 1;
            }
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let mut served = BTreeMap::new();
        while let Some(r) = g.next(0, &mut rng) {
            *served.entry(r.meta.job).or_insert(0u64) += r.bytes;
        }
        // Each job's budget is 5 KiB per interval; both should be throttled
        // after ~5 requests each within the first interval.
        assert_eq!(served[&JobId(1)], 5 * 1024);
        assert_eq!(served[&JobId(2)], 5 * 1024);
        assert_eq!(g.next_eligible_ns(0), Some(1_000_000));
    }

    #[test]
    fn budgets_replenish_next_interval() {
        let mut g = GiftScheduler::with_config(config_small());
        for s in 0..20 {
            g.enqueue(IoRequest::write(s, meta(1), 1024, 0));
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let mut first = 0;
        while let Some(r) = g.next(0, &mut rng) {
            first += r.bytes;
        }
        assert_eq!(first, 10 * 1024);
        // Advance past the interval: the remaining requests become eligible.
        let mut second = 0;
        while let Some(r) = g.next(2_000_000, &mut rng) {
            second += r.bytes;
        }
        assert_eq!(second, 10 * 1024);
    }

    #[test]
    fn spare_bandwidth_goes_to_the_only_backlogged_job() {
        let mut g = GiftScheduler::with_config(config_small());
        // Job 2 is known (row exists) but idle; job 1 has work.
        let mut table = JobTable::new();
        table.heartbeat(meta(1), 0);
        table.heartbeat(meta(2), 0);
        g.refresh(&table, &Policy::job_fair());
        for s in 0..10 {
            g.enqueue(IoRequest::write(s, meta(1), 1024, 0));
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let mut served = 0;
        while let Some(r) = g.next(0, &mut rng) {
            served += r.bytes;
        }
        // Job 1 gets the whole pool, not half of it.
        assert_eq!(served, 10 * 1024);
    }

    #[test]
    fn throttled_job_earns_and_redeems_coupons() {
        let mut g = GiftScheduler::with_config(config_small());
        let mut rng = SmallRng::seed_from_u64(0);
        // Interval 0: both jobs backlogged, but job 2's queue only holds
        // 1 KiB of its 5 KiB budget — it is "throttled" by its own workload
        // and earns coupons for the unused 4 KiB.
        for s in 0..10 {
            g.enqueue(IoRequest::write(s, meta(1), 1024, 0));
        }
        g.enqueue(IoRequest::write(100, meta(2), 1024, 0));
        while g.next(0, &mut rng).is_some() {}
        // Interval 1 recomputation happens on the first next() call after the
        // boundary; enqueue fresh work for both jobs first.
        for s in 200..210 {
            g.enqueue(IoRequest::write(s, meta(1), 1024, 0));
            g.enqueue(IoRequest::write(s + 100, meta(2), 1024, 0));
        }
        let mut served = BTreeMap::new();
        while let Some(r) = g.next(1_500_000, &mut rng) {
            *served.entry(r.meta.job).or_insert(0u64) += r.bytes;
        }
        // Job 2 redeems coupons on top of its equal share, so it is served
        // strictly more than job 1 in this interval.
        assert!(served[&JobId(2)] > served[&JobId(1)]);
    }

    #[test]
    fn refresh_drops_departed_jobs() {
        let mut g = GiftScheduler::new();
        g.enqueue(IoRequest::write(0, meta(7), 1, 0));
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = g.next(0, &mut rng);
        let table = JobTable::new(); // nobody active
        g.refresh(&table, &Policy::job_fair());
        assert_eq!(g.coupons(JobId(7)), 0.0);
        assert_eq!(g.queued(), 0);
    }
}
