//! The FIFO baseline: requests are served strictly in arrival order.
//!
//! This is the behaviour of today's production I/O stacks the paper argues
//! against (§1, §2.2.1): a highly concurrent, bursty job packs the queue and
//! every other job waits behind it.

use rand::RngCore;
use std::collections::VecDeque;
use themis_core::entity::JobId;
use themis_core::job_table::JobTable;
use themis_core::policy::Policy;
use themis_core::request::{Completion, IoRequest};
use themis_core::sched::Scheduler;
use themis_core::shares::ShareMap;

/// First-in-first-out scheduler: one global queue ordered by arrival.
#[derive(Debug, Default)]
pub struct FifoScheduler {
    queue: VecDeque<IoRequest>,
}

impl FifoScheduler {
    /// Creates an empty FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler::default()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn enqueue(&mut self, request: IoRequest) {
        self.queue.push_back(request);
    }

    fn next(&mut self, _now_ns: u64, _rng: &mut dyn RngCore) -> Option<IoRequest> {
        self.queue.pop_front()
    }

    fn on_complete(&mut self, _completion: &Completion) {}

    fn refresh(&mut self, _table: &JobTable, _policy: &Policy) {}

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn queued_for(&self, job: JobId) -> usize {
        self.queue.iter().filter(|r| r.meta.job == job).count()
    }

    fn backlogged_jobs(&self) -> Vec<JobId> {
        let mut jobs: Vec<JobId> = self.queue.iter().map(|r| r.meta.job).collect();
        jobs.sort_unstable();
        jobs.dedup();
        jobs
    }

    fn shares(&self) -> ShareMap {
        ShareMap::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use themis_core::entity::JobMeta;

    fn meta(job: u64) -> JobMeta {
        JobMeta::new(job, 1u32, 1u32, 1)
    }

    #[test]
    fn serves_in_arrival_order_across_jobs() {
        let mut s = FifoScheduler::new();
        s.enqueue(IoRequest::write(0, meta(1), 10, 100));
        s.enqueue(IoRequest::write(1, meta(2), 10, 200));
        s.enqueue(IoRequest::write(2, meta(1), 10, 300));
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(s.next(0, &mut rng).unwrap().seq, 0);
        assert_eq!(s.next(0, &mut rng).unwrap().seq, 1);
        assert_eq!(s.next(0, &mut rng).unwrap().seq, 2);
        assert!(s.next(0, &mut rng).is_none());
    }

    #[test]
    fn a_bursty_job_blocks_others() {
        // The motivating pathology: 1000 requests from job 1 arrive before a
        // single request from job 2; job 2 is served last.
        let mut s = FifoScheduler::new();
        for i in 0..1000 {
            s.enqueue(IoRequest::write(i, meta(1), 1 << 20, i));
        }
        s.enqueue(IoRequest::write(1000, meta(2), 4096, 1000));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut served_job2_at = None;
        for i in 0..1001 {
            let r = s.next(0, &mut rng).unwrap();
            if r.meta.job == JobId(2) {
                served_job2_at = Some(i);
            }
        }
        assert_eq!(served_job2_at, Some(1000));
    }

    #[test]
    fn queue_accounting() {
        let mut s = FifoScheduler::new();
        s.enqueue(IoRequest::write(0, meta(1), 10, 0));
        s.enqueue(IoRequest::write(1, meta(2), 10, 0));
        s.enqueue(IoRequest::write(2, meta(2), 10, 0));
        assert_eq!(s.queued(), 3);
        assert_eq!(s.queued_for(JobId(2)), 2);
        assert_eq!(s.backlogged_jobs(), vec![JobId(1), JobId(2)]);
        assert!(s.shares().is_empty());
    }
}
