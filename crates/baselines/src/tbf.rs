//! The TBF baseline (Qian et al., SC '17): a classful token bucket filter as
//! deployed in Lustre's NRS, re-implemented per §5.4 with its HTC (Hard Token
//! Compensation) and PSSB (Proportional Sharing of Spare Bandwidth)
//! strategies on top of ThemisIO's request queues.
//!
//! Each job owns a token bucket refilled at a *user-supplied* rate (the
//! paper's criticism: the rate must be known in advance and is usually
//! wrong). A request is served when its job's bucket holds enough tokens.
//! HTC compensates a job whose bucket sat full while it had no work (hard
//! token compensation), and PSSB hands bandwidth that no bucket can use to
//! backlogged jobs in proportion to their configured rates, so the device
//! does not idle while work is queued.

use rand::RngCore;
use std::collections::{BTreeMap, BTreeSet};
use themis_core::entity::JobId;
use themis_core::job_table::JobTable;
use themis_core::policy::Policy;
use themis_core::request::{Completion, IoRequest};
use themis_core::sched::{JobQueues, Scheduler};
use themis_core::shares::ShareMap;

/// Configuration of the TBF reference implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TbfConfig {
    /// Default token rate per job in bytes/second — the stand-in for the
    /// user-supplied I/O request rate TBF requires.
    pub default_rate_bytes_per_sec: f64,
    /// Bucket depth in seconds of rate (burst allowance).
    pub burst_seconds: f64,
    /// Whether HTC (hard token compensation) is enabled.
    pub htc: bool,
    /// Whether PSSB (proportional sharing of spare bandwidth) is enabled.
    pub pssb: bool,
}

impl Default for TbfConfig {
    fn default() -> Self {
        TbfConfig {
            // Half of a 22 GB/s server: what an operator would configure for
            // "two jobs sharing one server".
            default_rate_bytes_per_sec: 11.0e9,
            burst_seconds: 0.05,
            htc: true,
            pssb: true,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    rate: f64,
    tokens: f64,
    capacity: f64,
    last_refill_ns: u64,
    /// HTC credit in bytes accumulated while the bucket overflowed with no
    /// pending work.
    compensation: f64,
}

impl Bucket {
    fn new(rate: f64, burst_seconds: f64, now_ns: u64) -> Self {
        let capacity = (rate * burst_seconds).max(1.0);
        Bucket {
            rate,
            tokens: capacity,
            capacity,
            last_refill_ns: now_ns,
            compensation: 0.0,
        }
    }

    fn refill(&mut self, now_ns: u64, backlogged: bool, htc: bool) {
        let dt = now_ns.saturating_sub(self.last_refill_ns) as f64 / 1e9;
        self.last_refill_ns = now_ns;
        let earned = self.rate * dt;
        let headroom = self.capacity - self.tokens;
        if earned <= headroom {
            self.tokens += earned;
        } else {
            self.tokens = self.capacity;
            if htc && !backlogged {
                // Tokens lost to overflow while the job had no work are
                // remembered as compensation (capped at one bucket).
                self.compensation = (self.compensation + (earned - headroom)).min(self.capacity);
            }
        }
    }

    fn try_consume(&mut self, amount: f64) -> bool {
        if self.tokens + self.compensation >= amount {
            let from_tokens = amount.min(self.tokens);
            self.tokens -= from_tokens;
            self.compensation -= amount - from_tokens;
            true
        } else {
            false
        }
    }
}

/// Token-bucket-filter scheduler with HTC and PSSB.
#[derive(Debug)]
pub struct TbfScheduler {
    config: TbfConfig,
    queues: JobQueues,
    buckets: BTreeMap<JobId, Bucket>,
    rates: BTreeMap<JobId, f64>,
    shares: ShareMap,
}

impl TbfScheduler {
    /// Creates a TBF scheduler with the default configuration.
    pub fn new() -> Self {
        Self::with_config(TbfConfig::default())
    }

    /// Creates a TBF scheduler with an explicit configuration.
    pub fn with_config(config: TbfConfig) -> Self {
        TbfScheduler {
            config,
            queues: JobQueues::new(),
            buckets: BTreeMap::new(),
            rates: BTreeMap::new(),
            shares: ShareMap::empty(),
        }
    }

    /// Sets the user-supplied token rate of one job (bytes/second), the
    /// per-class rule of Lustre's TBF.
    pub fn set_rate(&mut self, job: JobId, rate_bytes_per_sec: f64) {
        let rate = if rate_bytes_per_sec.is_finite() && rate_bytes_per_sec > 0.0 {
            rate_bytes_per_sec
        } else {
            self.config.default_rate_bytes_per_sec
        };
        self.rates.insert(job, rate);
        if let Some(b) = self.buckets.get_mut(&job) {
            b.rate = rate;
            b.capacity = (rate * self.config.burst_seconds).max(1.0);
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TbfConfig {
        &self.config
    }

    /// Current token balance of a job's bucket, for tests and telemetry.
    pub fn tokens(&self, job: JobId) -> f64 {
        self.buckets.get(&job).map_or(0.0, |b| b.tokens)
    }

    fn bucket_for(&mut self, job: JobId, now_ns: u64) -> &mut Bucket {
        let rate = self
            .rates
            .get(&job)
            .copied()
            .unwrap_or(self.config.default_rate_bytes_per_sec);
        let burst = self.config.burst_seconds;
        self.buckets
            .entry(job)
            .or_insert_with(|| Bucket::new(rate, burst, now_ns))
    }
}

impl Default for TbfScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for TbfScheduler {
    fn name(&self) -> &'static str {
        "tbf"
    }

    fn enqueue(&mut self, request: IoRequest) {
        // Refill on arrival so a bucket that sat full while the job was idle
        // accrues its HTC credit before the job becomes backlogged again.
        let was_backlogged = self.queues.len_for(request.meta.job) > 0;
        let htc = self.config.htc;
        let bucket = self.bucket_for(request.meta.job, request.arrival_ns);
        bucket.refill(request.arrival_ns, was_backlogged, htc);
        self.queues.push(request);
    }

    fn next(&mut self, now_ns: u64, _rng: &mut dyn RngCore) -> Option<IoRequest> {
        if self.queues.is_empty() {
            return None;
        }
        // Set-based membership: every bucket probes `contains` once, so a
        // Vec scan here would be O(buckets × backlogged).
        let backlogged: BTreeSet<JobId> = self.queues.backlogged_unordered().collect();
        // Refill every bucket first (buckets of idle jobs accrue HTC credit).
        let htc = self.config.htc;
        for (job, bucket) in self.buckets.iter_mut() {
            bucket.refill(now_ns, backlogged.contains(job), htc);
        }
        // Pass 1: serve the backlogged job with the most tokens relative to
        // the cost of its head request.
        let mut best: Option<(JobId, f64)> = None;
        for job in &backlogged {
            let head_cost = self
                .queues
                .front(*job)
                .map_or(0.0, |r| r.bytes.max(1) as f64);
            if let Some(bucket) = self.buckets.get(job) {
                let slack = bucket.tokens + bucket.compensation - head_cost;
                if slack >= 0.0 && best.is_none_or(|(_, s)| slack > s) {
                    best = Some((*job, slack));
                }
            }
        }
        if let Some((job, _)) = best {
            let cost = self
                .queues
                .front(job)
                .map_or(0.0, |r| r.bytes.max(1) as f64);
            let consumed = self
                .buckets
                .get_mut(&job)
                .map(|b| b.try_consume(cost))
                .unwrap_or(false);
            if consumed {
                return self.queues.pop(job);
            }
        }
        // Pass 2 (PSSB): no bucket can pay for its head request, but work is
        // queued — hand the spare bandwidth to the backlogged job with the
        // highest configured rate (proportional sharing realised one request
        // at a time).
        if self.config.pssb {
            let job = backlogged.into_iter().max_by(|a, b| {
                let ra = self
                    .rates
                    .get(a)
                    .copied()
                    .unwrap_or(self.config.default_rate_bytes_per_sec);
                let rb = self
                    .rates
                    .get(b)
                    .copied()
                    .unwrap_or(self.config.default_rate_bytes_per_sec);
                ra.partial_cmp(&rb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(a))
            })?;
            // Spare-bandwidth service still drains the bucket into debt so
            // the job does not double-dip when tokens arrive.
            if let Some(b) = self.buckets.get_mut(&job) {
                let cost = self
                    .queues
                    .front(job)
                    .map_or(0.0, |r| r.bytes.max(1) as f64);
                b.tokens -= cost;
            }
            return self.queues.pop(job);
        }
        None
    }

    fn next_eligible_ns(&self, now_ns: u64) -> Option<u64> {
        if self.queues.is_empty() || self.config.pssb {
            return None;
        }
        // Without PSSB the earliest eligibility is when the poorest bucket
        // has refilled enough for its head request.
        // Unordered iteration is fine here: the fold is a min over times,
        // whose value does not depend on visit order.
        let mut earliest: Option<u64> = None;
        for job in self.queues.backlogged_unordered() {
            let cost = self
                .queues
                .front(job)
                .map_or(0.0, |r| r.bytes.max(1) as f64);
            if let Some(b) = self.buckets.get(&job) {
                let deficit = (cost - b.tokens - b.compensation).max(0.0);
                let wait_ns = (deficit / b.rate * 1e9).ceil() as u64;
                let t = now_ns + wait_ns;
                earliest = Some(earliest.map_or(t, |e: u64| e.min(t)));
            }
        }
        earliest
    }

    fn on_complete(&mut self, _completion: &Completion) {}

    fn refresh(&mut self, table: &JobTable, _policy: &Policy) {
        // TBF only supports job-level token rules (§5.4); the policy argument
        // is ignored. Jobs without an explicit rate share the configured
        // default. Buckets of departed jobs are dropped.
        let active: BTreeSet<JobId> = table.active_jobs().iter().map(|m| m.job).collect();
        self.buckets
            .retain(|job, _| active.contains(job) || self.queues.len_for(*job) > 0);
        self.shares = ShareMap::from_pairs(active.iter().map(|j| {
            (
                *j,
                self.rates
                    .get(j)
                    .copied()
                    .unwrap_or(self.config.default_rate_bytes_per_sec),
            )
        }));
    }

    fn queued(&self) -> usize {
        self.queues.len()
    }

    fn queued_for(&self, job: JobId) -> usize {
        self.queues.len_for(job)
    }

    fn backlogged_jobs(&self) -> Vec<JobId> {
        self.queues.backlogged()
    }

    fn shares(&self) -> ShareMap {
        self.shares.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use themis_core::entity::JobMeta;

    fn meta(job: u64) -> JobMeta {
        JobMeta::new(job, job as u32, 1u32, 1)
    }

    fn small_config() -> TbfConfig {
        TbfConfig {
            default_rate_bytes_per_sec: 1_000_000.0, // 1 MB/s
            burst_seconds: 0.001,                    // 1 KB bucket
            htc: true,
            pssb: false,
        }
    }

    #[test]
    fn requests_wait_for_tokens_without_pssb() {
        let mut t = TbfScheduler::with_config(small_config());
        for s in 0..4 {
            t.enqueue(IoRequest::write(s, meta(1), 1_000, 0));
        }
        let mut rng = SmallRng::seed_from_u64(0);
        // Bucket starts full (1 KB): exactly one request can go at t=0.
        assert!(t.next(0, &mut rng).is_some());
        assert!(t.next(0, &mut rng).is_none());
        let eligible = t.next_eligible_ns(0).unwrap();
        assert!(eligible > 0);
        // After one more millisecond of refill the next request clears.
        assert!(t.next(1_000_000, &mut rng).is_some());
    }

    #[test]
    fn pssb_keeps_device_busy_when_buckets_are_empty() {
        let mut cfg = small_config();
        cfg.pssb = true;
        let mut t = TbfScheduler::with_config(cfg);
        for s in 0..4 {
            t.enqueue(IoRequest::write(s, meta(1), 1_000, 0));
        }
        let mut rng = SmallRng::seed_from_u64(0);
        // All four are served immediately: one paid by the bucket, the rest
        // through spare-bandwidth sharing.
        for _ in 0..4 {
            assert!(t.next(0, &mut rng).is_some());
        }
        assert!(t.next(0, &mut rng).is_none());
    }

    #[test]
    fn rates_bias_pssb_towards_the_higher_rate_job() {
        let mut cfg = small_config();
        cfg.pssb = true;
        let mut t = TbfScheduler::with_config(cfg);
        t.set_rate(JobId(1), 4_000_000.0);
        t.set_rate(JobId(2), 1_000_000.0);
        let mut seq = 0;
        for _ in 0..50 {
            for j in [1u64, 2] {
                t.enqueue(IoRequest::write(seq, meta(j), 10_000, 0));
                seq += 1;
            }
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let mut counts = BTreeMap::new();
        for _ in 0..40 {
            if let Some(r) = t.next(0, &mut rng) {
                *counts.entry(r.meta.job).or_insert(0u32) += 1;
            }
        }
        assert!(counts[&JobId(1)] > counts.get(&JobId(2)).copied().unwrap_or(0));
    }

    #[test]
    fn htc_compensates_idle_full_buckets() {
        let mut cfg = small_config();
        cfg.pssb = false;
        let mut t = TbfScheduler::with_config(cfg);
        // Create the bucket at t=0 with no work; let it sit full for 10 ms.
        t.enqueue(IoRequest::write(0, meta(1), 1_000, 0));
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(t.next(0, &mut rng).is_some()); // drains the initial burst
                                                // Idle period: refills happen on the next call; compensation accrues
                                                // because the bucket overflows while not backlogged.
        t.enqueue(IoRequest::write(1, meta(1), 1_000, 20_000_000));
        t.enqueue(IoRequest::write(2, meta(1), 1_000, 20_000_000));
        // At 20 ms the bucket refilled to capacity (1 KB) and holds ~1 KB of
        // HTC credit, so two requests clear back to back.
        assert!(t.next(20_000_000, &mut rng).is_some());
        assert!(t.next(20_000_000, &mut rng).is_some());
    }

    #[test]
    fn refresh_reports_rate_proportional_shares() {
        let mut t = TbfScheduler::new();
        t.set_rate(JobId(1), 3.0e9);
        t.set_rate(JobId(2), 1.0e9);
        let mut table = JobTable::new();
        table.heartbeat(meta(1), 0);
        table.heartbeat(meta(2), 0);
        t.refresh(&table, &Policy::job_fair());
        let s = t.shares();
        assert!((s.share(JobId(1)) - 0.75).abs() < 1e-9);
        assert!((s.share(JobId(2)) - 0.25).abs() < 1e-9);
    }
}
