//! # themis-baselines
//!
//! Reference implementations of the I/O arbitration algorithms ThemisIO is
//! compared against in §5.4 of the paper:
//!
//! * [`FifoScheduler`] — first-in-first-out, the behaviour of unmanaged
//!   production systems;
//! * [`GiftScheduler`] — GIFT's BSIP equal-share allocation with
//!   coupon-based throttle-and-reward (FAST '20);
//! * [`TbfScheduler`] — the Lustre NRS token bucket filter with HTC and PSSB
//!   (SC '17).
//!
//! All three implement [`themis_core::sched::Scheduler`], so they can be
//! dropped into the server runtime or the simulator exactly where the
//! ThemisIO statistical-token scheduler goes — the same integration strategy
//! the paper used for its comparison study.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fifo;
pub mod gift;
pub mod tbf;

pub use fifo::FifoScheduler;
pub use gift::{GiftConfig, GiftScheduler};
pub use tbf::{TbfConfig, TbfScheduler};

use std::str::FromStr;
use themis_core::engine::PolicyEngine;
use themis_core::policy::{Policy, PolicyError};
use themis_core::sched::ThemisScheduler;

/// The arbitration algorithms available to servers and experiments.
///
/// `Algorithm` is a *description* — the configuration-level value an operator
/// writes down. [`Algorithm::build`] turns it into a live
/// [`PolicyEngine`] trait object, which is
/// the only interface servers and the simulator drive; nothing downstream
/// matches on this enum.
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// ThemisIO statistical tokens under the given policy.
    Themis(Policy),
    /// First-in-first-out.
    Fifo,
    /// GIFT (job-fair only).
    Gift(GiftConfig),
    /// TBF (job-fair only).
    Tbf(TbfConfig),
}

impl Algorithm {
    /// Builds a boxed policy engine for this algorithm.
    pub fn build(&self) -> Box<dyn PolicyEngine> {
        match self {
            Algorithm::Themis(policy) => Box::new(ThemisScheduler::new(policy.clone())),
            Algorithm::Fifo => Box::new(FifoScheduler::new()),
            Algorithm::Gift(cfg) => Box::new(GiftScheduler::with_config(*cfg)),
            Algorithm::Tbf(cfg) => Box::new(TbfScheduler::with_config(*cfg)),
        }
    }

    /// The sharing [`Policy`] the algorithm starts under: the configured one
    /// for ThemisIO, [`Policy::Fifo`] for FIFO, and job-fair for the GIFT/TBF
    /// baselines (both arbitrate per job).
    pub fn initial_policy(&self) -> Policy {
        match self {
            Algorithm::Themis(policy) => policy.clone(),
            Algorithm::Fifo => Policy::Fifo,
            Algorithm::Gift(_) | Algorithm::Tbf(_) => Policy::job_fair(),
        }
    }

    /// The short name of the algorithm, matching `PolicyEngine::name`.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Themis(_) => "themis",
            Algorithm::Fifo => "fifo",
            Algorithm::Gift(_) => "gift",
            Algorithm::Tbf(_) => "tbf",
        }
    }
}

impl FromStr for Algorithm {
    type Err = PolicyError;

    /// Parses an operator-facing algorithm string: `"fifo"`, `"gift"`,
    /// `"tbf"`, or any policy-DSL string (which selects the ThemisIO engine
    /// under that policy, e.g. `"user[2]-then-size-fair"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "gift" => Ok(Algorithm::Gift(GiftConfig::default())),
            "tbf" => Ok(Algorithm::Tbf(TbfConfig::default())),
            "fifo" => Ok(Algorithm::Fifo),
            other => Ok(Algorithm::Themis(other.parse()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_matching_names() {
        assert_eq!(Algorithm::Fifo.build().name(), "fifo");
        assert_eq!(
            Algorithm::Themis(Policy::size_fair()).build().name(),
            "themis"
        );
        assert_eq!(
            Algorithm::Gift(GiftConfig::default()).build().name(),
            "gift"
        );
        assert_eq!(Algorithm::Tbf(TbfConfig::default()).build().name(), "tbf");
    }

    #[test]
    fn algorithm_names_match_enum() {
        assert_eq!(Algorithm::Fifo.name(), "fifo");
        assert_eq!(Algorithm::Themis(Policy::job_fair()).name(), "themis");
    }

    #[test]
    fn initial_policy_reflects_algorithm() {
        assert_eq!(Algorithm::Fifo.initial_policy(), Policy::Fifo);
        assert_eq!(
            Algorithm::Themis(Policy::size_fair()).initial_policy(),
            Policy::size_fair()
        );
        assert_eq!(
            Algorithm::Gift(GiftConfig::default()).initial_policy(),
            Policy::job_fair()
        );
    }

    #[test]
    fn algorithm_parses_from_strings() {
        assert_eq!("fifo".parse::<Algorithm>().unwrap(), Algorithm::Fifo);
        assert_eq!(
            "gift".parse::<Algorithm>().unwrap(),
            Algorithm::Gift(GiftConfig::default())
        );
        assert_eq!(
            "tbf".parse::<Algorithm>().unwrap(),
            Algorithm::Tbf(TbfConfig::default())
        );
        assert_eq!(
            "user[2]-then-size-fair".parse::<Algorithm>().unwrap(),
            Algorithm::Themis("user[2]-then-size-fair".parse().unwrap())
        );
        assert!("banana".parse::<Algorithm>().is_err());
    }
}
