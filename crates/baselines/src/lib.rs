//! # themis-baselines
//!
//! Reference implementations of the I/O arbitration algorithms ThemisIO is
//! compared against in §5.4 of the paper:
//!
//! * [`FifoScheduler`] — first-in-first-out, the behaviour of unmanaged
//!   production systems;
//! * [`GiftScheduler`] — GIFT's BSIP equal-share allocation with
//!   coupon-based throttle-and-reward (FAST '20);
//! * [`TbfScheduler`] — the Lustre NRS token bucket filter with HTC and PSSB
//!   (SC '17).
//!
//! All three implement [`themis_core::sched::Scheduler`], so they can be
//! dropped into the server runtime or the simulator exactly where the
//! ThemisIO statistical-token scheduler goes — the same integration strategy
//! the paper used for its comparison study.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fifo;
pub mod gift;
pub mod tbf;

pub use fifo::FifoScheduler;
pub use gift::{GiftConfig, GiftScheduler};
pub use tbf::{TbfConfig, TbfScheduler};

use themis_core::policy::Policy;
use themis_core::sched::{Scheduler, ThemisScheduler};

/// The arbitration algorithms available to servers and experiments.
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// ThemisIO statistical tokens under the given policy.
    Themis(Policy),
    /// First-in-first-out.
    Fifo,
    /// GIFT (job-fair only).
    Gift(GiftConfig),
    /// TBF (job-fair only).
    Tbf(TbfConfig),
}

impl Algorithm {
    /// Builds a boxed scheduler for this algorithm.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            Algorithm::Themis(policy) => Box::new(ThemisScheduler::new(policy.clone())),
            Algorithm::Fifo => Box::new(FifoScheduler::new()),
            Algorithm::Gift(cfg) => Box::new(GiftScheduler::with_config(*cfg)),
            Algorithm::Tbf(cfg) => Box::new(TbfScheduler::with_config(*cfg)),
        }
    }

    /// The short name of the algorithm, matching `Scheduler::name`.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Themis(_) => "themis",
            Algorithm::Fifo => "fifo",
            Algorithm::Gift(_) => "gift",
            Algorithm::Tbf(_) => "tbf",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_matching_names() {
        assert_eq!(Algorithm::Fifo.build().name(), "fifo");
        assert_eq!(
            Algorithm::Themis(Policy::size_fair()).build().name(),
            "themis"
        );
        assert_eq!(Algorithm::Gift(GiftConfig::default()).build().name(), "gift");
        assert_eq!(Algorithm::Tbf(TbfConfig::default()).build().name(), "tbf");
    }

    #[test]
    fn algorithm_names_match_enum() {
        assert_eq!(Algorithm::Fifo.name(), "fifo");
        assert_eq!(Algorithm::Themis(Policy::job_fair()).name(), "themis");
    }
}
