//! The capacity tier behind the burst buffer.
//!
//! Drained extents are stored at whole-extent granularity keyed by
//! `(path, stripe)`, mirroring the burst-buffer shard's index, so a drain is
//! a consistent snapshot of one extent and a stage-in restores it
//! byte-for-byte.
//!
//! Every stored extent carries a checksum computed at write-back time
//! ([`extent_checksum`]): the capacity tier is the cheaper, colder medium,
//! so silent corruption there is the operational hazard the
//! [`ScrubPipeline`](crate::scrub::ScrubPipeline) exists to catch. The
//! checksum is recomputed on every [`BackingStore::write_back`], so a
//! legitimate rewrite (a fresh drain of a re-dirtied extent) can never be
//! mistaken for corruption.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use themis_device::DeviceConfig;

/// Checksum of one extent's contents, computed at drain write-back time and
/// stored alongside the extent (FNV-1a, 64-bit — fast, dependency-free, and
/// sensitive to any single flipped byte, which is the scrubber's threat
/// model; it is an *integrity* check, not a cryptographic one).
pub fn extent_checksum(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in data {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    // Fold the length in so a truncation to a prefix with the same rolling
    // hash state (e.g. the empty extent) cannot collide with the original.
    hash ^= data.len() as u64;
    hash.wrapping_mul(PRIME)
}

/// A capacity-tier store that absorbs drained burst-buffer extents and
/// serves stage-in reads.
///
/// Implementations must be safe to share between the server core and
/// out-of-band inspection (tests, status reporting); the in-tree
/// [`CapacityTier`] uses interior locking. The [`device`](BackingStore::device)
/// configuration is the tier's *performance model* — the server charges drain
/// writes and stage-in reads against a
/// [`DeviceTimeline`](themis_device::DeviceTimeline) built from it, which is
/// what bounds drain throughput to capacity-tier speed.
pub trait BackingStore: Send + Sync {
    /// Short name for logs and status output (e.g. `"capacity"`).
    fn name(&self) -> &'static str;

    /// The device model of this tier (bandwidth, per-op overhead, workers).
    fn device(&self) -> DeviceConfig;

    /// Stores a full extent snapshot, replacing any previous copy. The
    /// implementation records [`extent_checksum`]`(data)` alongside the
    /// extent so a scrubber can later verify the copy without trusting the
    /// medium.
    fn write_back(&self, path: &str, stripe: u64, data: &[u8]);

    /// Reads back a full extent, or `None` when the tier has no copy.
    fn read_back(&self, path: &str, stripe: u64) -> Option<Vec<u8>>;

    /// Reads back a full extent together with the checksum recorded at
    /// write-back time, atomically (data and checksum come from the same
    /// snapshot, so a concurrent rewrite can never produce a torn pair).
    /// `None` when the tier has no copy. A mismatch between
    /// [`extent_checksum`] of the returned data and the returned checksum
    /// means the stored bytes rotted after they were written.
    fn read_back_with_checksum(&self, path: &str, stripe: u64) -> Option<(Vec<u8>, u64)>;

    /// The first stored extent key strictly after `after` in `(path,
    /// stripe)` order (or the first key overall for `None`), with its
    /// length: the cursor primitive the scrub pipeline walks the tier with.
    fn next_extent_after(&self, after: Option<&(String, u64)>) -> Option<(String, u64, u64)>;

    /// Whether the tier holds a copy of the extent.
    fn contains(&self, path: &str, stripe: u64) -> bool;

    /// Drops every extent of `path` (unlink propagation), returning the
    /// bytes freed.
    fn remove_path(&self, path: &str) -> u64;

    /// Drops one extent, returning the bytes freed (`0` when absent). The
    /// rebalance pipeline uses this to prune a stale replica from a child
    /// the shard map no longer places it on; plain tiers default to a no-op
    /// because nothing outside the sharded router moves single extents.
    fn remove_extent(&self, path: &str, stripe: u64) -> u64 {
        let _ = (path, stripe);
        0
    }

    /// Downcast seam to the sharded router, for callers (the server's
    /// rebalance executor, the conformance harness) that need the reshard
    /// API — `None` for plain tiers, avoiding a blanket `Any` bound on the
    /// trait.
    fn as_sharded(&self) -> Option<&crate::shard::ShardedStore> {
        None
    }

    /// Total bytes stored in the tier.
    fn bytes_stored(&self) -> u64;

    /// Bytes stored for one path.
    fn bytes_for(&self, path: &str) -> u64;

    /// Number of extents stored.
    fn extent_count(&self) -> usize;
}

/// Reads back an extent only if its stored bytes still match the checksum
/// recorded at write-back — the *verified* read every restore / read-through
/// path must use. Serving an unverified tier copy would not just hand a
/// client corrupt bytes: the corrupt data would land in the burst buffer as
/// a clean resident copy, which the next scrub pass would then use as its
/// repair source — recomputing the checksum over the damaged bytes and
/// laundering the corruption past every future verification. `None` when
/// the tier has no copy *or* the copy fails verification; callers treat
/// both as a miss, and the scrub pass quarantines the damaged extent.
pub fn verified_read_back(backing: &dyn BackingStore, path: &str, stripe: u64) -> Option<Vec<u8>> {
    let (data, stored) = backing.read_back_with_checksum(path, stripe)?;
    (extent_checksum(&data) == stored).then_some(data)
}

/// One stored extent: contents plus the checksum recorded at write-back.
type StoredExtent = (Vec<u8>, u64);

/// The in-tree capacity tier: an in-memory extent store whose speed is
/// described by a [`DeviceConfig`] (typically
/// [`DeviceConfig::capacity_hdd`], a disk-speed preset far below the
/// burst-buffer NVMe).
#[derive(Debug)]
pub struct CapacityTier {
    device: DeviceConfig,
    /// `(path, stripe)` → stored extent.
    extents: RwLock<BTreeMap<(String, u64), StoredExtent>>,
}

impl CapacityTier {
    /// Creates a tier whose performance is modelled by `device`.
    pub fn new(device: DeviceConfig) -> Self {
        CapacityTier {
            device,
            extents: RwLock::new(BTreeMap::new()),
        }
    }

    /// The conventional disk-speed capacity tier
    /// ([`DeviceConfig::capacity_hdd`]).
    pub fn hdd() -> Self {
        CapacityTier::new(DeviceConfig::capacity_hdd())
    }

    /// Fault injection for integrity testing: flips one bit of the stored
    /// extent at `byte_offset` **without** updating the recorded checksum —
    /// the silent medium corruption the scrubber exists to catch. Returns
    /// whether an extent was corrupted (`false` when the tier holds no copy
    /// or the offset is past its end).
    ///
    /// This deliberately lives on the concrete [`CapacityTier`] rather than
    /// on [`BackingStore`]: production code paths have no reason to corrupt
    /// data, and keeping it off the trait keeps it out of the server's
    /// reach.
    pub fn corrupt_extent(&self, path: &str, stripe: u64, byte_offset: usize) -> bool {
        let mut extents = self.extents.write();
        match extents.get_mut(&(path.to_string(), stripe)) {
            Some((data, _)) if byte_offset < data.len() => {
                data[byte_offset] ^= 0x40;
                true
            }
            _ => false,
        }
    }
}

impl BackingStore for CapacityTier {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn device(&self) -> DeviceConfig {
        self.device
    }

    fn write_back(&self, path: &str, stripe: u64, data: &[u8]) {
        self.extents.write().insert(
            (path.to_string(), stripe),
            (data.to_vec(), extent_checksum(data)),
        );
    }

    fn read_back(&self, path: &str, stripe: u64) -> Option<Vec<u8>> {
        self.extents
            .read()
            .get(&(path.to_string(), stripe))
            .map(|(data, _)| data.clone())
    }

    fn read_back_with_checksum(&self, path: &str, stripe: u64) -> Option<(Vec<u8>, u64)> {
        self.extents
            .read()
            .get(&(path.to_string(), stripe))
            .cloned()
    }

    fn next_extent_after(&self, after: Option<&(String, u64)>) -> Option<(String, u64, u64)> {
        use std::ops::Bound;
        let extents = self.extents.read();
        let lower = match after {
            Some(key) => Bound::Excluded(key.clone()),
            None => Bound::Unbounded,
        };
        extents
            .range((lower, Bound::Unbounded))
            .next()
            .map(|((path, stripe), (data, _))| (path.clone(), *stripe, data.len() as u64))
    }

    fn contains(&self, path: &str, stripe: u64) -> bool {
        self.extents
            .read()
            .contains_key(&(path.to_string(), stripe))
    }

    fn remove_extent(&self, path: &str, stripe: u64) -> u64 {
        self.extents
            .write()
            .remove(&(path.to_string(), stripe))
            .map_or(0, |(e, _)| e.len() as u64)
    }

    fn remove_path(&self, path: &str) -> u64 {
        let mut extents = self.extents.write();
        let keys: Vec<(String, u64)> = extents
            .range((path.to_string(), 0)..=(path.to_string(), u64::MAX))
            .map(|(k, _)| k.clone())
            .collect();
        let mut freed = 0;
        for k in keys {
            if let Some((e, _)) = extents.remove(&k) {
                freed += e.len() as u64;
            }
        }
        freed
    }

    fn bytes_stored(&self) -> u64 {
        self.extents
            .read()
            .values()
            .map(|(e, _)| e.len() as u64)
            .sum()
    }

    fn bytes_for(&self, path: &str) -> u64 {
        self.extents
            .read()
            .range((path.to_string(), 0)..=(path.to_string(), u64::MAX))
            .map(|(_, (e, _))| e.len() as u64)
            .sum()
    }

    fn extent_count(&self) -> usize {
        self.extents.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_back_read_back_roundtrip() {
        let tier = CapacityTier::hdd();
        tier.write_back("/ckpt", 0, &[7u8; 1024]);
        tier.write_back("/ckpt", 3, &[9u8; 512]);
        assert_eq!(tier.read_back("/ckpt", 0).unwrap(), vec![7u8; 1024]);
        assert_eq!(tier.read_back("/ckpt", 3).unwrap(), vec![9u8; 512]);
        assert!(tier.read_back("/ckpt", 1).is_none());
        assert!(tier.contains("/ckpt", 3));
        assert_eq!(tier.bytes_stored(), 1536);
        assert_eq!(tier.bytes_for("/ckpt"), 1536);
        assert_eq!(tier.extent_count(), 2);
    }

    #[test]
    fn write_back_replaces_previous_snapshot() {
        let tier = CapacityTier::hdd();
        tier.write_back("/f", 0, &[1u8; 100]);
        tier.write_back("/f", 0, &[2u8; 50]);
        assert_eq!(tier.read_back("/f", 0).unwrap(), vec![2u8; 50]);
        assert_eq!(tier.bytes_stored(), 50);
    }

    #[test]
    fn remove_path_frees_only_that_path() {
        let tier = CapacityTier::hdd();
        tier.write_back("/a", 0, &[1u8; 10]);
        tier.write_back("/a", 1, &[1u8; 20]);
        tier.write_back("/b", 0, &[1u8; 5]);
        assert_eq!(tier.remove_path("/a"), 30);
        assert_eq!(tier.bytes_stored(), 5);
        assert!(tier.contains("/b", 0));
    }

    #[test]
    fn device_preset_is_slower_than_burst_buffer() {
        let tier = CapacityTier::hdd();
        assert!(tier.device().combined_bw() < DeviceConfig::optane_ssd().combined_bw());
    }

    #[test]
    fn checksum_is_stored_at_write_back_and_detects_corruption() {
        let tier = CapacityTier::hdd();
        tier.write_back("/c", 0, &[7u8; 256]);
        let (data, stored) = tier.read_back_with_checksum("/c", 0).unwrap();
        assert_eq!(stored, extent_checksum(&data));
        // A rewrite recomputes the checksum, so legitimate re-drains can
        // never look like corruption.
        tier.write_back("/c", 0, &[8u8; 128]);
        let (data, stored) = tier.read_back_with_checksum("/c", 0).unwrap();
        assert_eq!(data, vec![8u8; 128]);
        assert_eq!(stored, extent_checksum(&data));
        // Injected corruption flips stored bytes behind the checksum's back.
        assert!(tier.corrupt_extent("/c", 0, 5));
        let (data, stored) = tier.read_back_with_checksum("/c", 0).unwrap();
        assert_ne!(stored, extent_checksum(&data));
        // Out-of-range and missing extents refuse to corrupt.
        assert!(!tier.corrupt_extent("/c", 0, 128));
        assert!(!tier.corrupt_extent("/missing", 0, 0));
    }

    #[test]
    fn extent_checksum_distinguishes_prefixes_and_single_flips() {
        assert_ne!(extent_checksum(b"abc"), extent_checksum(b"abd"));
        assert_ne!(extent_checksum(b"abc"), extent_checksum(b"ab"));
        assert_ne!(extent_checksum(&[]), extent_checksum(&[0u8]));
        assert_eq!(extent_checksum(b"abc"), extent_checksum(b"abc"));
    }

    #[test]
    fn cursor_walks_every_extent_in_key_order() {
        let tier = CapacityTier::hdd();
        tier.write_back("/b", 1, &[1u8; 10]);
        tier.write_back("/a", 0, &[1u8; 20]);
        tier.write_back("/a", 2, &[1u8; 30]);
        let mut seen = Vec::new();
        let mut cursor: Option<(String, u64)> = None;
        while let Some((path, stripe, len)) = tier.next_extent_after(cursor.as_ref()) {
            cursor = Some((path.clone(), stripe));
            seen.push((path, stripe, len));
        }
        assert_eq!(
            seen,
            vec![
                ("/a".to_string(), 0, 20),
                ("/a".to_string(), 2, 30),
                ("/b".to_string(), 1, 10),
            ]
        );
    }
}
