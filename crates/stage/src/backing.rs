//! The capacity tier behind the burst buffer.
//!
//! Drained extents are stored at whole-extent granularity keyed by
//! `(path, stripe)`, mirroring the burst-buffer shard's index, so a drain is
//! a consistent snapshot of one extent and a stage-in restores it
//! byte-for-byte.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use themis_device::DeviceConfig;

/// A capacity-tier store that absorbs drained burst-buffer extents and
/// serves stage-in reads.
///
/// Implementations must be safe to share between the server core and
/// out-of-band inspection (tests, status reporting); the in-tree
/// [`CapacityTier`] uses interior locking. The [`device`](BackingStore::device)
/// configuration is the tier's *performance model* — the server charges drain
/// writes and stage-in reads against a
/// [`DeviceTimeline`](themis_device::DeviceTimeline) built from it, which is
/// what bounds drain throughput to capacity-tier speed.
pub trait BackingStore: Send + Sync {
    /// Short name for logs and status output (e.g. `"capacity"`).
    fn name(&self) -> &'static str;

    /// The device model of this tier (bandwidth, per-op overhead, workers).
    fn device(&self) -> DeviceConfig;

    /// Stores a full extent snapshot, replacing any previous copy.
    fn write_back(&self, path: &str, stripe: u64, data: &[u8]);

    /// Reads back a full extent, or `None` when the tier has no copy.
    fn read_back(&self, path: &str, stripe: u64) -> Option<Vec<u8>>;

    /// Whether the tier holds a copy of the extent.
    fn contains(&self, path: &str, stripe: u64) -> bool;

    /// Drops every extent of `path` (unlink propagation), returning the
    /// bytes freed.
    fn remove_path(&self, path: &str) -> u64;

    /// Total bytes stored in the tier.
    fn bytes_stored(&self) -> u64;

    /// Bytes stored for one path.
    fn bytes_for(&self, path: &str) -> u64;

    /// Number of extents stored.
    fn extent_count(&self) -> usize;
}

/// The in-tree capacity tier: an in-memory extent store whose speed is
/// described by a [`DeviceConfig`] (typically
/// [`DeviceConfig::capacity_hdd`], a disk-speed preset far below the
/// burst-buffer NVMe).
#[derive(Debug)]
pub struct CapacityTier {
    device: DeviceConfig,
    extents: RwLock<BTreeMap<(String, u64), Vec<u8>>>,
}

impl CapacityTier {
    /// Creates a tier whose performance is modelled by `device`.
    pub fn new(device: DeviceConfig) -> Self {
        CapacityTier {
            device,
            extents: RwLock::new(BTreeMap::new()),
        }
    }

    /// The conventional disk-speed capacity tier
    /// ([`DeviceConfig::capacity_hdd`]).
    pub fn hdd() -> Self {
        CapacityTier::new(DeviceConfig::capacity_hdd())
    }
}

impl BackingStore for CapacityTier {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn device(&self) -> DeviceConfig {
        self.device
    }

    fn write_back(&self, path: &str, stripe: u64, data: &[u8]) {
        self.extents
            .write()
            .insert((path.to_string(), stripe), data.to_vec());
    }

    fn read_back(&self, path: &str, stripe: u64) -> Option<Vec<u8>> {
        self.extents
            .read()
            .get(&(path.to_string(), stripe))
            .cloned()
    }

    fn contains(&self, path: &str, stripe: u64) -> bool {
        self.extents
            .read()
            .contains_key(&(path.to_string(), stripe))
    }

    fn remove_path(&self, path: &str) -> u64 {
        let mut extents = self.extents.write();
        let keys: Vec<(String, u64)> = extents
            .range((path.to_string(), 0)..=(path.to_string(), u64::MAX))
            .map(|(k, _)| k.clone())
            .collect();
        let mut freed = 0;
        for k in keys {
            if let Some(e) = extents.remove(&k) {
                freed += e.len() as u64;
            }
        }
        freed
    }

    fn bytes_stored(&self) -> u64 {
        self.extents.read().values().map(|e| e.len() as u64).sum()
    }

    fn bytes_for(&self, path: &str) -> u64 {
        self.extents
            .read()
            .range((path.to_string(), 0)..=(path.to_string(), u64::MAX))
            .map(|(_, e)| e.len() as u64)
            .sum()
    }

    fn extent_count(&self) -> usize {
        self.extents.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_back_read_back_roundtrip() {
        let tier = CapacityTier::hdd();
        tier.write_back("/ckpt", 0, &[7u8; 1024]);
        tier.write_back("/ckpt", 3, &[9u8; 512]);
        assert_eq!(tier.read_back("/ckpt", 0).unwrap(), vec![7u8; 1024]);
        assert_eq!(tier.read_back("/ckpt", 3).unwrap(), vec![9u8; 512]);
        assert!(tier.read_back("/ckpt", 1).is_none());
        assert!(tier.contains("/ckpt", 3));
        assert_eq!(tier.bytes_stored(), 1536);
        assert_eq!(tier.bytes_for("/ckpt"), 1536);
        assert_eq!(tier.extent_count(), 2);
    }

    #[test]
    fn write_back_replaces_previous_snapshot() {
        let tier = CapacityTier::hdd();
        tier.write_back("/f", 0, &[1u8; 100]);
        tier.write_back("/f", 0, &[2u8; 50]);
        assert_eq!(tier.read_back("/f", 0).unwrap(), vec![2u8; 50]);
        assert_eq!(tier.bytes_stored(), 50);
    }

    #[test]
    fn remove_path_frees_only_that_path() {
        let tier = CapacityTier::hdd();
        tier.write_back("/a", 0, &[1u8; 10]);
        tier.write_back("/a", 1, &[1u8; 20]);
        tier.write_back("/b", 0, &[1u8; 5]);
        assert_eq!(tier.remove_path("/a"), 30);
        assert_eq!(tier.bytes_stored(), 5);
        assert!(tier.contains("/b", 0));
    }

    #[test]
    fn device_preset_is_slower_than_burst_buffer() {
        let tier = CapacityTier::hdd();
        assert!(tier.device().combined_bw() < DeviceConfig::optane_ssd().combined_bw());
    }
}
