//! The per-server scrub pipeline: background checksum verification of the
//! capacity tier, admitted through the policy engine as
//! [`TrafficClass::Scrub`](crate::TrafficClass::Scrub) traffic.
//!
//! Burst-buffer deployments back their staging tier with cheaper, colder
//! media, where silent corruption is a real operational hazard (Romanus et
//! al., "Challenges and Considerations for Utilizing Burst Buffers in HPC").
//! The scrubber walks the tier's extents in key order — one *pass* covers
//! every extent this server owns — re-reads each copy, and compares it
//! against the checksum recorded at drain write-back time
//! ([`extent_checksum`](crate::backing::extent_checksum)). On a mismatch the
//! server repairs the copy from the burst tier when a clean resident copy
//! still exists, defers to the pending drain when a concurrent foreground
//! write re-dirtied the extent (the generation guard — a scrub must never
//! "repair" a tier copy from data the drain pipeline has not flushed yet),
//! and otherwise *quarantines* the extent, surfacing it through
//! [`ScrubStatus`].
//!
//! Unlike drain (driven by dirty foreground writes) and restore (driven by
//! foreground misses), scrub requests are synthesized purely from *tier
//! state*: the pipeline holds a cursor into the capacity tier and a pass
//! timer, and the only thing foreground traffic controls is how fast the
//! engine releases the requests — the scrub lane runs at
//! [`DrainConfig::scrub_weight`](crate::pipeline::DrainConfig::scrub_weight)
//! against the foreground like every other class, and expands into idle
//! capacity when the foreground goes quiet. That makes it the first
//! *maintenance* class on the reserved range, proving the class framework
//! generalises beyond the demand-driven drain/restore pair.

use crate::backing::BackingStore;
use crate::pipeline::scrub_meta;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use themis_core::entity::JobMeta;
use themis_core::request::{IoRequest, OpKind};
use themis_telemetry::{Counter, Gauge, MetricsRegistry, SeriesKey};

/// A point-in-time snapshot of one server's scrub state, reported through
/// the `ScrubStatus` control-plane message and as the deferred
/// acknowledgement of an explicit `Scrub` request.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubStatus {
    /// Whether the continuous background scrubber is enabled on this server
    /// (an explicit `Scrub` request forces a pass either way).
    pub enabled: bool,
    /// Completed full passes over the capacity tier since boot.
    pub passes_completed: u64,
    /// Whether a pass is currently in progress.
    pub pass_active: bool,
    /// Scrub verifications admitted and not yet completed.
    pub inflight: usize,
    /// Extents verified since boot (clean or not).
    pub scrubbed_extents: u64,
    /// Bytes verified since boot.
    pub scrubbed_bytes: u64,
    /// Checksum mismatches detected since boot (every corruption event,
    /// whatever its outcome below).
    pub errors_detected: u64,
    /// Mismatched extents repaired from a clean resident burst-tier copy.
    pub repaired_extents: u64,
    /// Mismatched extents superseded by a concurrent foreground write: the
    /// shard copy was dirty at verification time, so the pending drain —
    /// not the scrubber — owns the tier copy's next contents (the
    /// generation guard).
    pub superseded_extents: u64,
    /// Extents currently quarantined: corrupt in the tier with no resident
    /// burst copy to repair from. The data is left in place for forensics;
    /// operators (and tests) read this list to learn exactly which extents
    /// are damaged.
    pub quarantined: Vec<(String, u64)>,
}

impl ScrubStatus {
    /// Number of quarantined extents.
    pub fn quarantined_extents(&self) -> usize {
        self.quarantined.len()
    }

    /// Whether the scrubber has found no unresolved corruption.
    pub fn is_healthy(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// One extent travelling through the scrub pipeline.
#[derive(Debug, Clone)]
pub struct ScrubTarget {
    /// Path of the file the extent belongs to.
    pub path: String,
    /// Stripe index of the extent.
    pub stripe: u64,
    /// Extent length at admission time (the request's cost).
    pub bytes: u64,
}

/// Pre-resolved registry handles mirroring [`ScrubPipeline`]'s cumulative
/// counters. Quarantine membership is instantaneous (extents leave the set
/// when a fresh drain rewrites them), so it mirrors into a gauge.
#[derive(Debug)]
struct ScrubStats {
    passes_completed: Counter,
    scrubbed_extents: Counter,
    scrubbed_bytes: Counter,
    errors_detected: Counter,
    repaired_extents: Counter,
    superseded_extents: Counter,
    quarantined_extents: Gauge,
}

/// Per-server scrub bookkeeping: the pass cursor over the capacity tier,
/// extents in flight, cumulative verification counters and the quarantine
/// set.
///
/// Mirrors [`DrainPipeline`](crate::pipeline::DrainPipeline) /
/// [`RestorePipeline`](crate::pipeline::RestorePipeline): the pipeline
/// decides *what* to verify and synthesizes the policy-visible
/// [`IoRequest`]s under the [`TrafficClass::Scrub`](crate::TrafficClass)
/// identity; the server core moves the bytes (and judges the checksums)
/// when the engine releases each request.
#[derive(Debug)]
pub struct ScrubPipeline {
    server: usize,
    enabled: bool,
    interval_ns: u64,
    max_inflight: usize,
    /// Last key admitted this pass; `None` at the start of a pass.
    cursor: Option<(String, u64)>,
    /// Whether a pass is in progress (admitting or waiting on inflight).
    pass_active: bool,
    /// The cursor walked off the end of the tier; the pass completes once
    /// the in-flight verifications land.
    cursor_exhausted: bool,
    /// Monotonic pass counter; the *current* pass id while one is active.
    pass: u64,
    /// Virtual time before which no new pass starts (pass pacing).
    next_pass_due_ns: u64,
    /// A forced pass was requested (explicit `Scrub` message) — overrides
    /// both `enabled` and the pass interval.
    forced: bool,
    inflight: HashMap<u64, ScrubTarget>,
    passes_completed: u64,
    scrubbed_extents: u64,
    scrubbed_bytes: u64,
    errors_detected: u64,
    repaired_extents: u64,
    superseded_extents: u64,
    quarantined: BTreeSet<(String, u64)>,
    stats: Option<ScrubStats>,
}

impl ScrubPipeline {
    /// Creates the scrub pipeline of `server`: `enabled` runs continuous
    /// passes paced by `interval_ns`, admitting at most `max_inflight`
    /// verifications at a time.
    pub fn new(server: usize, enabled: bool, interval_ns: u64, max_inflight: usize) -> Self {
        ScrubPipeline {
            server,
            enabled,
            interval_ns,
            max_inflight: max_inflight.max(1),
            cursor: None,
            pass_active: false,
            cursor_exhausted: false,
            pass: 0,
            next_pass_due_ns: 0,
            forced: false,
            inflight: HashMap::new(),
            passes_completed: 0,
            scrubbed_extents: 0,
            scrubbed_bytes: 0,
            errors_detected: 0,
            repaired_extents: 0,
            superseded_extents: 0,
            quarantined: BTreeSet::new(),
            stats: None,
        }
    }

    /// Resolves registry handles (lane `"scrub"` on this pipeline's server)
    /// so every subsequent outcome is mirrored into `registry` — see
    /// [`DrainPipeline::attach_telemetry`](crate::DrainPipeline::attach_telemetry).
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        let key = SeriesKey::class(self.server, crate::TrafficClass::Scrub.name());
        self.stats = Some(ScrubStats {
            passes_completed: registry.counter(key, "passes_completed"),
            scrubbed_extents: registry.counter(key, "scrubbed_extents"),
            scrubbed_bytes: registry.counter(key, "scrubbed_bytes"),
            errors_detected: registry.counter(key, "errors_detected"),
            repaired_extents: registry.counter(key, "repaired_extents"),
            superseded_extents: registry.counter(key, "superseded_extents"),
            quarantined_extents: registry.gauge(key, "quarantined_extents"),
        });
    }

    /// The scrub job identity of this server.
    pub fn meta(&self) -> JobMeta {
        scrub_meta(self.server)
    }

    /// Whether the continuous background scrubber is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Demands a scrub pass (the explicit `Scrub` control-plane request):
    /// returns the id of the pass whose completion the caller should wait
    /// for. The demand is always answered by a pass that *starts* after it
    /// arrived — acking a pass already in flight would certify extents its
    /// cursor walked before the demand (and before whatever prompted it) —
    /// so a running pass is allowed to finish and a forced follow-up pass
    /// starts right behind it, bypassing the interval pacing.
    pub fn force_pass(&mut self) -> u64 {
        self.forced = true;
        // Whether idle (the forced pass is the next to start) or active
        // (the current pass `self.pass` finishes first, then the forced
        // follow-up starts immediately), the demand's pass id is the same.
        self.pass + 1
    }

    /// Admits the next extent of the current pass under sequence number
    /// `seq`, starting a pass first when one is due. Returns the
    /// [`IoRequest`] to feed to the policy engine — a *read* costed at the
    /// extent's length (the verification streams the tier copy through one
    /// of the server's policy-granted service slots; the matching
    /// capacity-tier read is charged by the caller when the engine releases
    /// the request). `None` when no pass is due, the cursor is exhausted,
    /// or the pipelining depth is reached.
    ///
    /// `owns` decides which tier extents this server verifies (stripe →
    /// shard ownership), so a multi-server deployment scrubs the shared
    /// tier exactly once. Quarantined extents are skipped — re-detecting a
    /// known-bad extent every pass would only inflate the error counters.
    pub fn admit_next(
        &mut self,
        seq: u64,
        now_ns: u64,
        backing: &dyn BackingStore,
        owns: impl Fn(&str, u64) -> bool,
    ) -> Option<IoRequest> {
        if !self.pass_active {
            let due = self.forced || (self.enabled && now_ns >= self.next_pass_due_ns);
            if !due {
                return None;
            }
            self.pass_active = true;
            self.cursor = None;
            self.cursor_exhausted = false;
            self.forced = false;
            self.pass += 1;
        }
        if self.cursor_exhausted || self.inflight.len() >= self.max_inflight {
            return None;
        }
        loop {
            let Some((path, stripe, bytes)) = backing.next_extent_after(self.cursor.as_ref())
            else {
                self.cursor_exhausted = true;
                return None;
            };
            self.cursor = Some((path.clone(), stripe));
            if !owns(&path, stripe) || self.quarantined.contains(&(path.clone(), stripe)) {
                continue;
            }
            let bytes = bytes.max(1);
            self.inflight.insert(
                seq,
                ScrubTarget {
                    path,
                    stripe,
                    bytes,
                },
            );
            return Some(IoRequest::new(
                seq,
                self.meta(),
                OpKind::Read,
                bytes,
                now_ns,
            ));
        }
    }

    /// Looks up an in-flight scrub by request sequence number.
    pub fn inflight(&self, seq: u64) -> Option<&ScrubTarget> {
        self.inflight.get(&seq)
    }

    /// Completes a verification: removes it from the in-flight set and
    /// returns the target so the caller can judge the checksum and record
    /// the outcome with one of the `record_*` methods.
    pub fn complete(&mut self, seq: u64) -> Option<ScrubTarget> {
        self.inflight.remove(&seq)
    }

    /// Accounts one judged verification into the pipeline counters and their
    /// registry mirrors (`error` for any mismatch, whatever its outcome).
    fn record_verified(&mut self, bytes: u64, error: bool) {
        self.scrubbed_extents += 1;
        self.scrubbed_bytes += bytes;
        if error {
            self.errors_detected += 1;
        }
        if let Some(s) = &self.stats {
            s.scrubbed_extents.inc();
            s.scrubbed_bytes.add(bytes);
            if error {
                s.errors_detected.inc();
            }
        }
    }

    /// Mirrors the quarantine set's size into the registry gauge.
    fn sync_quarantine_gauge(&self) {
        if let Some(s) = &self.stats {
            s.quarantined_extents.set(self.quarantined.len() as i64);
        }
    }

    /// Records a verification whose checksum matched (`bytes` verified).
    pub fn record_clean(&mut self, bytes: u64) {
        self.record_verified(bytes, false);
    }

    /// Records a detected mismatch that was repaired from a clean resident
    /// burst copy.
    pub fn record_repaired(&mut self, bytes: u64) {
        self.record_verified(bytes, true);
        self.repaired_extents += 1;
        if let Some(s) = &self.stats {
            s.repaired_extents.inc();
        }
    }

    /// Records a detected mismatch on an extent a concurrent foreground
    /// write re-dirtied: the pending drain supersedes the scrubber (the
    /// generation guard), so nothing is repaired.
    pub fn record_superseded(&mut self, bytes: u64) {
        self.record_verified(bytes, true);
        self.superseded_extents += 1;
        if let Some(s) = &self.stats {
            s.superseded_extents.inc();
        }
    }

    /// Records a detected mismatch with no resident burst copy to repair
    /// from: the extent enters quarantine.
    pub fn record_quarantined(&mut self, path: String, stripe: u64, bytes: u64) {
        self.record_verified(bytes, true);
        self.quarantined.insert((path, stripe));
        self.sync_quarantine_gauge();
    }

    /// Lifts the quarantine of an extent whose tier copy was legitimately
    /// rewritten (a fresh drain write-back recomputes the checksum, so the
    /// new copy is sound by construction) or removed (unlink).
    pub fn unquarantine(&mut self, path: &str, stripe: u64) {
        self.quarantined.remove(&(path.to_string(), stripe));
        self.sync_quarantine_gauge();
    }

    /// Lifts the quarantine of every extent of `path` (unlink propagation —
    /// the tier copies are gone, so there is nothing left to warn about).
    pub fn unquarantine_path(&mut self, path: &str) {
        self.quarantined.retain(|(p, _)| p != path);
        self.sync_quarantine_gauge();
    }

    /// Finishes the pass if its cursor is exhausted and every in-flight
    /// verification has landed, returning the completed pass id (the key
    /// deferred `Scrub` acknowledgements wait on). Schedules the next pass
    /// `interval_ns` from `now_ns`.
    pub fn finish_pass_if_idle(&mut self, now_ns: u64) -> Option<u64> {
        if !self.pass_active || !self.cursor_exhausted || !self.inflight.is_empty() {
            return None;
        }
        self.pass_active = false;
        self.cursor = None;
        self.cursor_exhausted = false;
        self.passes_completed += 1;
        if let Some(s) = &self.stats {
            s.passes_completed.inc();
        }
        self.next_pass_due_ns = now_ns.saturating_add(self.interval_ns);
        Some(self.pass)
    }

    /// Whether any scrub work is admitted and unfinished.
    pub fn is_busy(&self) -> bool {
        !self.inflight.is_empty()
    }

    /// Builds the status snapshot.
    pub fn status(&self) -> ScrubStatus {
        ScrubStatus {
            enabled: self.enabled,
            passes_completed: self.passes_completed,
            pass_active: self.pass_active,
            inflight: self.inflight.len(),
            scrubbed_extents: self.scrubbed_extents,
            scrubbed_bytes: self.scrubbed_bytes,
            errors_detected: self.errors_detected,
            repaired_extents: self.repaired_extents,
            superseded_extents: self.superseded_extents,
            quarantined: self.quarantined.iter().cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::{extent_checksum, CapacityTier};
    use crate::pipeline::is_scrub;
    use crate::BackingStore;

    fn tier_with(extents: &[(&str, u64, usize)]) -> CapacityTier {
        let tier = CapacityTier::hdd();
        for (path, stripe, len) in extents {
            tier.write_back(path, *stripe, &vec![9u8; *len]);
        }
        tier
    }

    #[test]
    fn a_pass_walks_owned_extents_and_completes() {
        let tier = tier_with(&[("/a", 0, 100), ("/a", 1, 200), ("/b", 0, 300)]);
        let mut p = ScrubPipeline::new(0, true, 1_000, 2);
        // Owns everything except /b.
        let owns = |path: &str, _stripe: u64| path != "/b";
        let r0 = p.admit_next(1, 0, &tier, owns).expect("first admit");
        assert!(is_scrub(&r0.meta));
        assert_eq!(r0.kind, OpKind::Read);
        assert_eq!(r0.bytes, 100);
        let r1 = p.admit_next(2, 0, &tier, owns).expect("second admit");
        assert_eq!(r1.bytes, 200);
        // Depth 2 reached.
        assert!(p.admit_next(3, 0, &tier, owns).is_none());
        assert!(p.is_busy());
        // Completions free depth; /b is skipped, so the cursor exhausts.
        let t = p.complete(1).unwrap();
        assert_eq!((t.path.as_str(), t.stripe), ("/a", 0));
        p.record_clean(t.bytes);
        assert!(p.admit_next(3, 0, &tier, owns).is_none(), "only /b left");
        // The pass is not done until the second verification lands.
        assert!(p.finish_pass_if_idle(500).is_none());
        let t = p.complete(2).unwrap();
        p.record_clean(t.bytes);
        let pass = p.finish_pass_if_idle(500).expect("pass complete");
        assert_eq!(pass, 1);
        let status = p.status();
        assert_eq!(status.passes_completed, 1);
        assert_eq!(status.scrubbed_extents, 2);
        assert_eq!(status.scrubbed_bytes, 300);
        assert_eq!(status.errors_detected, 0);
        assert!(status.is_healthy());
        // The next pass is paced by the interval.
        assert!(p.admit_next(4, 1_000, &tier, owns).is_none());
        assert!(p.admit_next(4, 1_500 + 1, &tier, owns).is_some());
    }

    #[test]
    fn force_pass_bypasses_interval_and_disabled_state() {
        let tier = tier_with(&[("/x", 0, 64)]);
        let mut p = ScrubPipeline::new(0, false, u64::MAX, 4);
        // Disabled: nothing is admitted on its own.
        assert!(p.admit_next(1, 0, &tier, |_, _| true).is_none());
        let pass = p.force_pass();
        assert_eq!(pass, 1);
        let r = p.admit_next(1, 0, &tier, |_, _| true).expect("forced");
        assert_eq!(r.bytes, 64);
        let t = p.complete(1).unwrap();
        p.record_clean(t.bytes);
        assert!(p.admit_next(2, 0, &tier, |_, _| true).is_none());
        assert_eq!(p.finish_pass_if_idle(0), Some(1));
        // Forcing during an active pass waits for a *follow-up* pass: the
        // running pass walked its cursor before the demand arrived, so
        // acking it would certify stale verifications.
        assert_eq!(p.force_pass(), 2);
        let t3 = p.admit_next(3, 0, &tier, |_, _| true).expect("second pass");
        assert_eq!(p.force_pass(), 3, "demand mid-pass targets the next pass");
        // Pass 2 completes; the forced follow-up (pass 3) starts right
        // behind it without waiting out the (infinite) interval, and its
        // completion is what answers the mid-pass demand.
        let done = p.complete(t3.seq).unwrap();
        p.record_clean(done.bytes);
        assert!(p.admit_next(4, 0, &tier, |_, _| true).is_none());
        assert_eq!(p.finish_pass_if_idle(0), Some(2));
        let t4 = p
            .admit_next(4, 0, &tier, |_, _| true)
            .expect("forced follow-up");
        let done = p.complete(t4.seq).unwrap();
        p.record_clean(done.bytes);
        assert!(p.admit_next(5, 0, &tier, |_, _| true).is_none());
        assert_eq!(p.finish_pass_if_idle(0), Some(3));
    }

    #[test]
    fn outcomes_account_and_quarantine_dedups() {
        let tier = tier_with(&[("/q", 0, 50), ("/q", 1, 60)]);
        tier.corrupt_extent("/q", 0, 3);
        let (data, stored) = tier.read_back_with_checksum("/q", 0).unwrap();
        assert_ne!(extent_checksum(&data), stored);
        let mut p = ScrubPipeline::new(0, true, 0, 4);
        p.record_quarantined("/q".into(), 0, 50);
        p.record_repaired(60);
        p.record_superseded(10);
        let status = p.status();
        assert_eq!(status.errors_detected, 3);
        assert_eq!(status.repaired_extents, 1);
        assert_eq!(status.superseded_extents, 1);
        assert_eq!(status.quarantined, vec![("/q".to_string(), 0)]);
        assert_eq!(status.quarantined_extents(), 1);
        assert!(!status.is_healthy());
        // A quarantined key is skipped by admission…
        let r = p.admit_next(9, 0, &tier, |_, _| true).expect("admit");
        assert_eq!(p.inflight(9).unwrap().stripe, 1);
        assert_eq!(r.bytes, 60);
        // …until a legitimate rewrite lifts the quarantine.
        p.unquarantine("/q", 0);
        assert!(p.status().is_healthy());
    }

    #[test]
    fn empty_tier_pass_completes_immediately() {
        let tier = CapacityTier::hdd();
        let mut p = ScrubPipeline::new(0, true, 100, 4);
        assert!(p.admit_next(1, 0, &tier, |_, _| true).is_none());
        assert_eq!(p.finish_pass_if_idle(7), Some(1));
        assert_eq!(p.status().passes_completed, 1);
        assert!(!p.status().pass_active);
    }
}
