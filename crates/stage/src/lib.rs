//! # themis-stage
//!
//! The staging & drain subsystem of ThemisIO-RS: the burst buffer as a
//! *staging tier* in front of a slower capacity file system.
//!
//! The paper arbitrates the burst-buffer device itself; BurstMem-style
//! systems show that the *other* half of the sharing problem is drain
//! bandwidth — the background traffic that flushes buffered writes to the
//! capacity tier so the NVMe space can be reclaimed before the next
//! checkpoint burst. This crate supplies the three pieces that problem
//! needs:
//!
//! * [`BackingStore`] / [`CapacityTier`] — the capacity tier behind the
//!   burst buffer, modelled with its own [`DeviceConfig`]
//!   (e.g. [`DeviceConfig::capacity_hdd`]).
//! * [`TrafficClass`] + [`ClassWeights`] — the taxonomy of system-internal
//!   traffic (drain, restore, scrub, rebalance, replicate), registered in
//!   one [`TRAFFIC_CLASSES`] table, each with its own job-id sub-range of
//!   the reserved range and its own foreground:class weight.
//! * [`DrainPipeline`] / [`RestorePipeline`] / [`ScrubPipeline`] +
//!   [`DrainConfig`] — per-server bookkeeping of the extents moving in each
//!   direction (plus the background checksum verification of the capacity
//!   tier) and the synthesis of that traffic as ordinary
//!   [`IoRequest`](themis_core::request::IoRequest)s under the class's
//!   [job identity](drain_meta).
//! * [`StagedEngine`] — a [`PolicyEngine`](themis_core::engine::PolicyEngine)
//!   decorator that schedules the synthesized class requests *alongside*
//!   foreground traffic with configurable foreground:class weights. The
//!   weights are expressed through the policy crate's own
//!   [`WeightedLevel`](themis_core::policy::WeightedLevel) machinery, so the
//!   paper's fine-grained sharing extends to stage-out *and* stage-in
//!   without a second arbitration mechanism.
//!
//! The server runtime and the simulator both drive these pieces: the
//! pipelines decide *what* to move, the staged engine decides *when* each
//! class may consume device time, and the backing store decides *how fast*
//! the capacity tier absorbs or serves it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backing;
pub mod class;
pub mod engine;
pub mod pipeline;
pub mod rebalance;
pub mod replicate;
pub mod scrub;
pub mod shard;

pub use backing::{extent_checksum, verified_read_back, BackingStore, CapacityTier};
pub use class::{ClassWeights, ClassWeightsError, TrafficClass, TrafficClassDef, TRAFFIC_CLASSES};
pub use engine::StagedEngine;
pub use pipeline::{
    class_of, drain_meta, is_drain, is_rebalance, is_replicate, is_restore, is_scrub,
    rebalance_meta, replicate_meta, restore_meta, scrub_meta, write_back_guarded, DrainConfig,
    DrainPipeline, DrainStatus, RestorePipeline, RestoreTarget, StagingConfig, DRAIN_GROUP_ID,
    DRAIN_JOB_BASE, DRAIN_USER_ID,
};
pub use rebalance::{RebalancePipeline, RebalanceStatus};
pub use replicate::{ReplicaTarget, ReplicatePipeline, ReplicateStatus};
pub use scrub::{ScrubPipeline, ScrubStatus, ScrubTarget};
pub use shard::{
    shard_byte, MigrationOutcome, MigrationPlan, PlacementReport, ShardMap, ShardSpec, ShardedStore,
};

// Re-exported so downstream crates configuring a capacity tier do not need a
// direct themis-device dependency.
pub use themis_device::DeviceConfig;
