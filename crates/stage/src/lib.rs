//! # themis-stage
//!
//! The staging & drain subsystem of ThemisIO-RS: the burst buffer as a
//! *staging tier* in front of a slower capacity file system.
//!
//! The paper arbitrates the burst-buffer device itself; BurstMem-style
//! systems show that the *other* half of the sharing problem is drain
//! bandwidth — the background traffic that flushes buffered writes to the
//! capacity tier so the NVMe space can be reclaimed before the next
//! checkpoint burst. This crate supplies the three pieces that problem
//! needs:
//!
//! * [`BackingStore`] / [`CapacityTier`] — the capacity tier behind the
//!   burst buffer, modelled with its own [`DeviceConfig`]
//!   (e.g. [`DeviceConfig::capacity_hdd`]).
//! * [`DrainPipeline`] + [`DrainConfig`] — per-server bookkeeping of the
//!   extents being written back, watermark-driven eviction accounting, and
//!   the synthesis of drain traffic as ordinary
//!   [`IoRequest`](themis_core::request::IoRequest)s under a reserved
//!   [drain job identity](drain_meta).
//! * [`StagedEngine`] — a [`PolicyEngine`](themis_core::engine::PolicyEngine)
//!   decorator that schedules the synthesized drain requests *alongside*
//!   foreground traffic with a configurable foreground:drain weight. The
//!   weight is expressed through the policy crate's own
//!   [`WeightedLevel`](themis_core::policy::WeightedLevel) machinery, so the
//!   paper's fine-grained sharing extends to stage-out without a second
//!   arbitration mechanism.
//!
//! The server runtime and the simulator both drive these pieces: the drain
//! pipeline decides *what* to write back, the staged engine decides *when*
//! drain traffic may consume device time, and the backing store decides *how
//! fast* the capacity tier absorbs it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backing;
pub mod engine;
pub mod pipeline;

pub use backing::{BackingStore, CapacityTier};
pub use engine::StagedEngine;
pub use pipeline::{
    drain_meta, is_drain, DrainConfig, DrainPipeline, DrainStatus, StagingConfig, DRAIN_GROUP_ID,
    DRAIN_JOB_BASE, DRAIN_USER_ID,
};

// Re-exported so downstream crates configuring a capacity tier do not need a
// direct themis-device dependency.
pub use themis_device::DeviceConfig;
