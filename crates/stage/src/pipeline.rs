//! The per-server drain pipeline: configuration, the reserved drain job
//! identity, and the bookkeeping of extents in flight between the
//! burst-buffer shard and the capacity tier.
//!
//! The pipeline does not move bytes itself — the server core (or the
//! simulator) reads the extent snapshot from the shard, charges the
//! burst-buffer and capacity devices, and writes to the
//! [`BackingStore`]. The pipeline's job is to
//! make that flow *policy-visible*: every drain is an ordinary
//! [`IoRequest`] under the [drain job identity](drain_meta), admitted to the
//! server's [`PolicyEngine`](themis_core::engine::PolicyEngine) (wrapped in a
//! [`StagedEngine`](crate::engine::StagedEngine)), so drain bandwidth is
//! arbitrated exactly like foreground bandwidth.

use crate::backing::BackingStore;
use crate::class::TrafficClass;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use themis_core::entity::JobMeta;
use themis_core::request::{IoRequest, OpKind};
use themis_device::DeviceConfig;
use themis_telemetry::{Counter, MetricsRegistry, SeriesKey};

/// First job id of the reserved drain-job range (class 0 of the internal
/// traffic-class layout). Each server's drain traffic runs under
/// `DRAIN_JOB_BASE + server_index`, so per-server drain streams stay
/// distinguishable in telemetry.
///
/// This is the workspace-wide reserved range exported by the core crate
/// ([`themis_core::entity::RESERVED_JOB_BASE`]), sub-divided per class by
/// [`themis_core::entity::RESERVED_CLASS_SPAN`]; the client and server use
/// the core constant to reject client traffic inside it, so the boundary
/// cannot drift between the layers.
pub const DRAIN_JOB_BASE: u64 = themis_core::entity::RESERVED_JOB_BASE;

/// Reserved user id of drain traffic.
pub const DRAIN_USER_ID: u32 = u32::MAX;

/// Reserved group id of drain traffic.
pub const DRAIN_GROUP_ID: u32 = u32::MAX;

/// The job identity drain requests are issued under on `server`.
pub fn drain_meta(server: usize) -> JobMeta {
    TrafficClass::Drain.meta(server)
}

/// The job identity restore (stage-in) requests are issued under on
/// `server`.
pub fn restore_meta(server: usize) -> JobMeta {
    TrafficClass::Restore.meta(server)
}

/// The job identity scrub (capacity-tier integrity verification) requests
/// are issued under on `server`.
pub fn scrub_meta(server: usize) -> JobMeta {
    TrafficClass::Scrub.meta(server)
}

/// The job identity rebalance (shard-map migration) requests are issued
/// under on `server`.
pub fn rebalance_meta(server: usize) -> JobMeta {
    TrafficClass::Rebalance.meta(server)
}

/// The job identity replicate (durability replication) requests are issued
/// under on `server`.
pub fn replicate_meta(server: usize) -> JobMeta {
    TrafficClass::Replicate.meta(server)
}

/// The internal traffic class of a request's job metadata (`None` for
/// foreground client traffic).
pub fn class_of(meta: &JobMeta) -> Option<TrafficClass> {
    TrafficClass::of(meta.job)
}

/// Whether a request (by its job metadata) is synthesized drain traffic.
pub fn is_drain(meta: &JobMeta) -> bool {
    class_of(meta) == Some(TrafficClass::Drain)
}

/// Whether a request (by its job metadata) is synthesized restore traffic.
pub fn is_restore(meta: &JobMeta) -> bool {
    class_of(meta) == Some(TrafficClass::Restore)
}

/// Whether a request (by its job metadata) is synthesized scrub traffic.
pub fn is_scrub(meta: &JobMeta) -> bool {
    class_of(meta) == Some(TrafficClass::Scrub)
}

/// Whether a request (by its job metadata) is synthesized rebalance
/// traffic.
pub fn is_rebalance(meta: &JobMeta) -> bool {
    class_of(meta) == Some(TrafficClass::Rebalance)
}

/// Whether a request (by its job metadata) is synthesized durability
/// replication traffic.
pub fn is_replicate(meta: &JobMeta) -> bool {
    class_of(meta) == Some(TrafficClass::Replicate)
}

/// Configuration of one server's drain pipeline.
///
/// Per-class weight and enablement knobs used to accrete here one field
/// pair per class (`scrub_weight` + `scrub_enabled`, …); they are unified
/// into the [`ClassWeights`](crate::class::ClassWeights) builder carried by
/// [`DrainConfig::classes`]. The old field names survive as deprecated
/// accessor shims so out-of-tree callers migrate at their own pace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainConfig {
    /// When the shard's resident bytes exceed this watermark, clean (already
    /// drained) extents are evicted…
    pub high_watermark_bytes: u64,
    /// …until resident bytes fall back to this watermark. Eviction never
    /// touches dirty extents — data whose only copy is in the burst buffer
    /// is never dropped.
    pub low_watermark_bytes: u64,
    /// Per-class foreground:class weights and enablement. A weight of `8`
    /// means foreground traffic collectively receives 8× the device time of
    /// that class while both are backlogged; when the foreground goes idle,
    /// the class expands into the idle capacity (opportunity fairness,
    /// extended to every internal class). Enablement governs the classes
    /// whose pipelines synthesize traffic unprompted (scrub, rebalance,
    /// replicate); demand-driven drain/restore run regardless.
    pub classes: crate::class::ClassWeights,
    /// Pause between the end of one scrub pass over the capacity tier and
    /// the start of the next (virtual ns). `0` means back-to-back passes.
    pub scrub_interval_ns: u64,
    /// Maximum number of extents in flight between the shard and the
    /// capacity tier at once, per direction (pipelining depth).
    pub max_inflight: usize,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            high_watermark_bytes: 768 << 20,
            low_watermark_bytes: 512 << 20,
            classes: crate::class::ClassWeights::default(),
            scrub_interval_ns: 1_000_000_000,
            max_inflight: 4,
        }
    }
}

impl DrainConfig {
    /// The per-class weights this configuration assigns the staged engine.
    pub fn class_weights(&self) -> crate::class::ClassWeights {
        self.classes
    }

    /// Validates the configuration: watermarks ordered, weights and
    /// pipelining depth non-zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.low_watermark_bytes > self.high_watermark_bytes {
            return Err(format!(
                "low watermark {} exceeds high watermark {}",
                self.low_watermark_bytes, self.high_watermark_bytes
            ));
        }
        self.classes.validate()?;
        if self.max_inflight == 0 {
            return Err("max_inflight must be >= 1".to_string());
        }
        Ok(())
    }

    /// Legacy accessor for the drain weight.
    #[deprecated(note = "read `classes.weight(TrafficClass::Drain)` instead")]
    pub fn drain_weight(&self) -> u32 {
        self.classes.weight(TrafficClass::Drain)
    }

    /// Legacy accessor for the restore weight.
    #[deprecated(note = "read `classes.weight(TrafficClass::Restore)` instead")]
    pub fn restore_weight(&self) -> u32 {
        self.classes.weight(TrafficClass::Restore)
    }

    /// Legacy accessor for the scrub weight.
    #[deprecated(note = "read `classes.weight(TrafficClass::Scrub)` instead")]
    pub fn scrub_weight(&self) -> u32 {
        self.classes.weight(TrafficClass::Scrub)
    }

    /// Legacy accessor for the scrub enablement flag.
    #[deprecated(note = "read `classes.is_enabled(TrafficClass::Scrub)` instead")]
    pub fn scrub_enabled(&self) -> bool {
        self.classes.is_enabled(TrafficClass::Scrub)
    }

    /// Legacy accessor for the rebalance weight.
    #[deprecated(note = "read `classes.weight(TrafficClass::Rebalance)` instead")]
    pub fn rebalance_weight(&self) -> u32 {
        self.classes.weight(TrafficClass::Rebalance)
    }

    /// Legacy accessor for the rebalance enablement flag.
    #[deprecated(note = "read `classes.is_enabled(TrafficClass::Rebalance)` instead")]
    pub fn rebalance_enabled(&self) -> bool {
        self.classes.is_enabled(TrafficClass::Rebalance)
    }
}

/// Configuration of the whole staging subsystem on one server: the capacity
/// tier's device model plus the drain pipeline parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagingConfig {
    /// Device model of the capacity tier absorbing drained extents. Used
    /// when `sharding` is `None`; a sharded tier models each child with
    /// its own device and charges tier I/O against the slowest of them.
    pub backing_device: DeviceConfig,
    /// Shard the capacity tier: build a
    /// [`ShardedStore`](crate::shard::ShardedStore) from this spec instead
    /// of a single [`CapacityTier`](crate::backing::CapacityTier).
    pub sharding: Option<crate::shard::ShardSpec>,
    /// Drain pipeline parameters.
    pub drain: DrainConfig,
    /// Durability demand: which writes owe an asynchronous replica (and
    /// which acks must wait for one). `None` means every write is
    /// `local_only` — no replica tier is modelled and the replicate class
    /// stays idle.
    pub durability: Option<themis_core::durability::DurabilitySpec>,
}

impl Default for StagingConfig {
    fn default() -> Self {
        StagingConfig {
            backing_device: DeviceConfig::capacity_hdd(),
            sharding: None,
            drain: DrainConfig::default(),
            durability: None,
        }
    }
}

/// A point-in-time snapshot of one server's staging state, reported through
/// the `DrainStatus` control-plane message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainStatus {
    /// Bytes resident in the burst-buffer shard (clean + dirty).
    pub resident_bytes: u64,
    /// Bytes in dirty extents (not yet drained to the capacity tier).
    pub dirty_bytes: u64,
    /// Bytes stored in the capacity tier.
    pub backing_bytes: u64,
    /// Extents currently in flight between the shard and the capacity tier.
    pub inflight_extents: usize,
    /// Total bytes drained to the capacity tier since boot.
    pub drained_bytes: u64,
    /// Total drain operations completed since boot.
    pub drained_ops: u64,
    /// Total bytes reclaimed by watermark eviction since boot.
    pub evicted_bytes: u64,
    /// Total extents evicted since boot.
    pub evicted_extents: u64,
    /// Bytes of restore (stage-in) work admitted and not yet completed —
    /// the restore *backlog*. Clients and the harness read this to observe
    /// queue delay on the stage-in path: a read of evicted data lands behind
    /// this many policy-arbitrated bytes.
    pub pending_restore_bytes: u64,
    /// Total bytes restored from the capacity tier since boot.
    pub restored_bytes: u64,
    /// Total restore operations completed since boot.
    pub restored_ops: u64,
}

impl DrainStatus {
    /// Whether the shard is fully drained (no dirty bytes, nothing in
    /// flight).
    pub fn is_clean(&self) -> bool {
        self.dirty_bytes == 0 && self.inflight_extents == 0
    }

    /// Whether the restore pipeline is idle (no stage-in backlog).
    pub fn restore_idle(&self) -> bool {
        self.pending_restore_bytes == 0
    }
}

/// One extent travelling through the pipeline.
#[derive(Debug, Clone)]
pub struct InflightDrain {
    /// Path of the file the extent belongs to.
    pub path: String,
    /// Stripe index of the extent.
    pub stripe: u64,
    /// Dirty generation captured when the drain was admitted; the shard only
    /// marks the extent clean if the generation still matches at completion
    /// (a concurrent overwrite re-dirties it).
    pub generation: u64,
    /// Extent length at admission time.
    pub bytes: u64,
}

/// Pre-resolved registry handles mirroring [`DrainPipeline`]'s cumulative
/// counters (attached by the server so `DrainStatus` can be built as a view
/// over one registry snapshot).
#[derive(Debug)]
struct DrainStats {
    drained_bytes: Counter,
    drained_ops: Counter,
    evicted_bytes: Counter,
    evicted_extents: Counter,
}

/// Per-server drain bookkeeping: which extents are in flight, cumulative
/// drain/eviction counters, and admission capacity.
#[derive(Debug)]
pub struct DrainPipeline {
    server: usize,
    config: DrainConfig,
    inflight: HashMap<u64, InflightDrain>,
    inflight_keys: HashSet<(String, u64)>,
    drained_bytes: u64,
    drained_ops: u64,
    evicted_bytes: u64,
    evicted_extents: u64,
    stats: Option<DrainStats>,
}

impl DrainPipeline {
    /// Creates the pipeline of `server` under `config`.
    pub fn new(server: usize, config: DrainConfig) -> Self {
        DrainPipeline {
            server,
            config,
            inflight: HashMap::new(),
            inflight_keys: HashSet::new(),
            drained_bytes: 0,
            drained_ops: 0,
            evicted_bytes: 0,
            evicted_extents: 0,
            stats: None,
        }
    }

    /// Resolves registry handles for the pipeline's cumulative counters, so
    /// every subsequent mutation is mirrored into `registry` (lane `"drain"`
    /// on this pipeline's server) and a status snapshot can be assembled
    /// from one consistent registry read. Call before any traffic flows —
    /// counts recorded while detached are not back-filled.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        let key = SeriesKey::class(self.server, TrafficClass::Drain.name());
        self.stats = Some(DrainStats {
            drained_bytes: registry.counter(key, "drained_bytes"),
            drained_ops: registry.counter(key, "drained_ops"),
            evicted_bytes: registry.counter(key, "evicted_bytes"),
            evicted_extents: registry.counter(key, "evicted_extents"),
        });
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &DrainConfig {
        &self.config
    }

    /// The drain job identity of this server.
    pub fn meta(&self) -> JobMeta {
        drain_meta(self.server)
    }

    /// How many more drains may be admitted right now.
    pub fn admission_capacity(&self) -> usize {
        self.config.max_inflight.saturating_sub(self.inflight.len())
    }

    /// Extent keys currently in flight (excluded from re-admission).
    pub fn inflight_keys(&self) -> &HashSet<(String, u64)> {
        &self.inflight_keys
    }

    /// Number of extents in flight.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether any in-flight extent belongs to `path`.
    pub fn has_inflight_for(&self, path: &str) -> bool {
        self.inflight_keys.iter().any(|(p, _)| p == path)
    }

    /// Admits a drain of one extent: records it in flight and returns the
    /// [`IoRequest`] to feed to the policy engine. The request is a *read* of
    /// the burst-buffer device (the drain's cost on the contended resource);
    /// the matching capacity-tier write is charged by the caller when the
    /// read completes.
    pub fn admit(
        &mut self,
        seq: u64,
        path: String,
        stripe: u64,
        generation: u64,
        bytes: u64,
        now_ns: u64,
    ) -> IoRequest {
        self.inflight_keys.insert((path.clone(), stripe));
        self.inflight.insert(
            seq,
            InflightDrain {
                path,
                stripe,
                generation,
                bytes,
            },
        );
        IoRequest::new(seq, self.meta(), OpKind::Read, bytes, now_ns)
    }

    /// Looks up an in-flight drain by request sequence number.
    pub fn inflight(&self, seq: u64) -> Option<&InflightDrain> {
        self.inflight.get(&seq)
    }

    /// Completes a drain: removes it from the in-flight set and accounts the
    /// drained bytes. Returns the completed record.
    pub fn complete(&mut self, seq: u64) -> Option<InflightDrain> {
        let d = self.inflight.remove(&seq)?;
        self.inflight_keys.remove(&(d.path.clone(), d.stripe));
        self.drained_bytes += d.bytes;
        self.drained_ops += 1;
        if let Some(s) = &self.stats {
            s.drained_bytes.add(d.bytes);
            s.drained_ops.inc();
        }
        Some(d)
    }

    /// Accounts a watermark eviction of `bytes` across `extents` extents.
    pub fn record_eviction(&mut self, extents: u64, bytes: u64) {
        self.evicted_extents += extents;
        self.evicted_bytes += bytes;
        if let Some(s) = &self.stats {
            s.evicted_extents.add(extents);
            s.evicted_bytes.add(bytes);
        }
    }

    /// Builds the status snapshot given the shard-side numbers the pipeline
    /// itself does not track. Restore-side counters are zero; the caller
    /// merges them from its [`RestorePipeline`] via
    /// [`RestorePipeline::fill_status`].
    pub fn status(&self, resident_bytes: u64, dirty_bytes: u64, backing_bytes: u64) -> DrainStatus {
        DrainStatus {
            resident_bytes,
            dirty_bytes,
            backing_bytes,
            inflight_extents: self.inflight.len(),
            drained_bytes: self.drained_bytes,
            drained_ops: self.drained_ops,
            evicted_bytes: self.evicted_bytes,
            evicted_extents: self.evicted_extents,
            pending_restore_bytes: 0,
            restored_bytes: 0,
            restored_ops: 0,
        }
    }
}

/// Writes one drained extent to the capacity tier, then re-probes that the
/// extent is still legitimate — the **delete-wins** rule for the
/// unlink/truncate-vs-drain race.
///
/// In a threaded deployment, a peer server can `unlink` or truncate the
/// path between the drain's `snapshot_extent_on` and this `write_back`:
/// both purge the shard extents *and* call [`BackingStore::remove_path`],
/// but a write-back that lands afterwards would resurrect a stale copy in
/// the shared tier — readable forever via stage-in even though the data is
/// gone. Probing *after* the write closes the window: whichever order the
/// two raced in, an extent that can no longer legitimately exist ends up
/// with no tier copy.
///
/// `still_valid` is the caller's probe; it must return `false` for both
/// races — the server probes `stat(path).size > stripe_start`, which a bare
/// existence check would not catch for truncate (the path survives, its
/// extents do not).
///
/// Returns `true` when the copy was kept, `false` when delete won and the
/// path's tier copies were dropped.
pub fn write_back_guarded(
    backing: &dyn BackingStore,
    path: &str,
    stripe: u64,
    data: &[u8],
    still_valid: impl FnOnce() -> bool,
) -> bool {
    backing.write_back(path, stripe, data);
    if still_valid() {
        true
    } else {
        backing.remove_path(path);
        false
    }
}

/// One extent travelling through the restore pipeline: where it must land
/// and how.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RestoreTarget {
    /// Shard (server index) the extent is restored onto.
    pub shard: usize,
    /// Path of the file the extent belongs to.
    pub path: String,
    /// Stripe index of the extent.
    pub stripe: u64,
    /// Extent length recorded at eviction time (the request's cost on the
    /// burst device).
    pub bytes: u64,
    /// Whether the extent re-enters the shard pinned dirty
    /// (restore-for-write) instead of clean (stage-in / read-through).
    pub pin_dirty: bool,
}

impl RestoreTarget {
    /// The `(shard, path, stripe)` key waiters subscribe to.
    pub fn key(&self) -> (usize, String, u64) {
        (self.shard, self.path.clone(), self.stripe)
    }
}

/// Pre-resolved registry handles mirroring [`RestorePipeline`]'s counters.
///
/// The backlog is **derived**, not stored: `requested_bytes` grows when a
/// restore is queued and `completed_bytes` grows (by the same admitted cost)
/// when it lands, so `pending = requested - completed` is non-negative in
/// *any* registry snapshot — per-writer `requested` is bumped first, and the
/// snapshot's sorted load order reads `completed_bytes` before
/// `requested_bytes` (the follower-sorts-first naming convention, see
/// `MetricsRegistry::snapshot`).
#[derive(Debug)]
struct RestoreStats {
    requested_bytes: Counter,
    completed_bytes: Counter,
    restored_bytes: Counter,
    restored_ops: Counter,
}

/// Per-server restore bookkeeping: the queue of extents waiting for
/// admission, the extents in flight, and cumulative stage-in counters.
///
/// Mirrors [`DrainPipeline`] for the opposite direction: the pipeline
/// decides *what* needs to come back and synthesizes the policy-visible
/// [`IoRequest`]s (under the [`TrafficClass::Restore`] identity); the server
/// core moves the bytes when the engine releases each request.
#[derive(Debug)]
pub struct RestorePipeline {
    server: usize,
    max_inflight: usize,
    queue: VecDeque<RestoreTarget>,
    inflight: HashMap<u64, RestoreTarget>,
    /// Keys queued or in flight, for deduplication: many waiters may need
    /// the same extent, which must be restored exactly once.
    pending_keys: HashSet<(usize, String, u64)>,
    queued_bytes: u64,
    inflight_bytes: u64,
    restored_bytes: u64,
    restored_ops: u64,
    stats: Option<RestoreStats>,
}

impl RestorePipeline {
    /// Creates the restore pipeline of `server` admitting at most
    /// `max_inflight` extents at a time.
    pub fn new(server: usize, max_inflight: usize) -> Self {
        RestorePipeline {
            server,
            max_inflight: max_inflight.max(1),
            queue: VecDeque::new(),
            inflight: HashMap::new(),
            pending_keys: HashSet::new(),
            queued_bytes: 0,
            inflight_bytes: 0,
            restored_bytes: 0,
            restored_ops: 0,
            stats: None,
        }
    }

    /// Resolves registry handles (lane `"restore"` on this pipeline's
    /// server) so every subsequent mutation is mirrored into `registry` —
    /// see [`DrainPipeline::attach_telemetry`].
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        let key = SeriesKey::class(self.server, TrafficClass::Restore.name());
        self.stats = Some(RestoreStats {
            requested_bytes: registry.counter(key, "requested_bytes"),
            completed_bytes: registry.counter(key, "completed_bytes"),
            restored_bytes: registry.counter(key, "restored_bytes"),
            restored_ops: registry.counter(key, "restored_ops"),
        });
    }

    /// The restore job identity of this server.
    pub fn meta(&self) -> JobMeta {
        restore_meta(self.server)
    }

    /// Whether `target`'s extent is already queued or in flight.
    pub fn is_pending(&self, key: &(usize, String, u64)) -> bool {
        self.pending_keys.contains(key)
    }

    /// Enqueues a restore target. Deduplicates by `(shard, path, stripe)`;
    /// a pin-dirty request upgrades an already-queued clean restore (a
    /// writer is now waiting on it), never the reverse. Returns whether a
    /// new entry was queued.
    pub fn request(&mut self, target: RestoreTarget) -> bool {
        let key = target.key();
        if self.pending_keys.contains(&key) {
            if target.pin_dirty {
                for queued in self.queue.iter_mut() {
                    if queued.key() == key {
                        queued.pin_dirty = true;
                    }
                }
                for inflight in self.inflight.values_mut() {
                    if inflight.key() == key {
                        inflight.pin_dirty = true;
                    }
                }
            }
            return false;
        }
        self.pending_keys.insert(key);
        self.queued_bytes += target.bytes.max(1);
        if let Some(s) = &self.stats {
            s.requested_bytes.add(target.bytes.max(1));
        }
        self.queue.push_back(target);
        true
    }

    /// Admits the next queued restore under sequence number `seq`,
    /// returning the [`IoRequest`] to feed to the policy engine — a *write*
    /// of the burst-buffer device (the restore's cost on the contended
    /// resource); the matching capacity-tier read is charged by the caller
    /// when the engine releases the request. `None` when the queue is empty
    /// or the pipelining depth is reached.
    pub fn admit_next(&mut self, seq: u64, now_ns: u64) -> Option<IoRequest> {
        if self.inflight.len() >= self.max_inflight {
            return None;
        }
        let target = self.queue.pop_front()?;
        let bytes = target.bytes.max(1);
        self.queued_bytes -= bytes;
        self.inflight_bytes += bytes;
        let request = IoRequest::new(seq, self.meta(), OpKind::Write, bytes, now_ns);
        self.inflight.insert(seq, target);
        Some(request)
    }

    /// Looks up an in-flight restore by request sequence number.
    pub fn inflight(&self, seq: u64) -> Option<&RestoreTarget> {
        self.inflight.get(&seq)
    }

    /// Completes a restore: removes it from the in-flight set, accounts
    /// `actual_bytes` restored (the tier copy's true length — `0` when the
    /// tier no longer held the extent), and returns the target so the caller
    /// can notify waiters.
    pub fn complete(&mut self, seq: u64, actual_bytes: u64) -> Option<RestoreTarget> {
        let target = self.inflight.remove(&seq)?;
        self.pending_keys.remove(&target.key());
        self.inflight_bytes -= target.bytes.max(1);
        self.restored_bytes += actual_bytes;
        self.restored_ops += 1;
        if let Some(s) = &self.stats {
            // Completed at the *admitted* cost, matching `requested_bytes`'
            // unit, so the derived backlog nets out exactly; the tier copy's
            // true length is accounted separately.
            s.completed_bytes.add(target.bytes.max(1));
            s.restored_bytes.add(actual_bytes);
            s.restored_ops.inc();
        }
        Some(target)
    }

    /// Bytes of restore work admitted and not yet completed (queued plus in
    /// flight) — the backlog surfaced as
    /// [`DrainStatus::pending_restore_bytes`].
    pub fn pending_bytes(&self) -> u64 {
        self.queued_bytes + self.inflight_bytes
    }

    /// Whether any restore work is queued or in flight.
    pub fn is_busy(&self) -> bool {
        !self.queue.is_empty() || !self.inflight.is_empty()
    }

    /// Total bytes restored since boot.
    pub fn restored_bytes(&self) -> u64 {
        self.restored_bytes
    }

    /// Merges this pipeline's counters into a status snapshot.
    pub fn fill_status(&self, status: &mut DrainStatus) {
        status.pending_restore_bytes = self.pending_bytes();
        status.restored_bytes = self.restored_bytes;
        status.restored_ops = self.restored_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassWeights;

    #[test]
    fn drain_identity_is_reserved_and_per_server() {
        let a = drain_meta(0);
        let b = drain_meta(3);
        assert!(is_drain(&a));
        assert!(is_drain(&b));
        assert_ne!(a.job, b.job);
        assert!(!is_drain(&JobMeta::new(1u64, 1u32, 1u32, 4)));
        // Ordinary job ids are far below the reserved range.
        assert!(!is_drain(&JobMeta::new(1u64 << 40, 1u32, 1u32, 4)));
    }

    #[test]
    fn config_validation() {
        let base = DrainConfig::default();
        assert!(base.validate().is_ok());
        let inverted = DrainConfig {
            low_watermark_bytes: base.high_watermark_bytes + 1,
            ..base
        };
        assert!(inverted.validate().is_err());
        for class in [
            TrafficClass::Drain,
            TrafficClass::Restore,
            TrafficClass::Scrub,
        ] {
            let zero_weight = DrainConfig {
                classes: base.classes.with_weight(class, 0),
                ..base
            };
            assert!(zero_weight.validate().is_err(), "{class}");
        }
        let zero_inflight = DrainConfig {
            max_inflight: 0,
            ..base
        };
        assert!(zero_inflight.validate().is_err());
        // The per-class weight builder carries every knob.
        let weights = DrainConfig {
            classes: base
                .classes
                .with_weight(TrafficClass::Drain, 6)
                .with_weight(TrafficClass::Restore, 3)
                .with_weight(TrafficClass::Scrub, 12),
            ..base
        }
        .class_weights();
        assert_eq!(weights.weight(TrafficClass::Drain), 6);
        assert_eq!(weights.weight(TrafficClass::Restore), 3);
        assert_eq!(weights.weight(TrafficClass::Scrub), 12);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_field_shims_read_the_unified_weights() {
        let config = DrainConfig {
            classes: ClassWeights::default()
                .enable(TrafficClass::Scrub, 12)
                .disable(TrafficClass::Rebalance),
            ..DrainConfig::default()
        };
        assert_eq!(config.drain_weight(), 8);
        assert_eq!(config.restore_weight(), 8);
        assert_eq!(config.scrub_weight(), 12);
        assert!(config.scrub_enabled());
        assert_eq!(config.rebalance_weight(), 16);
        assert!(!config.rebalance_enabled());
    }

    #[test]
    fn restore_identity_is_a_distinct_reserved_class() {
        let d = drain_meta(2);
        let r = restore_meta(2);
        assert!(is_drain(&d) && !is_restore(&d));
        assert!(is_restore(&r) && !is_drain(&r));
        assert_eq!(class_of(&d), Some(TrafficClass::Drain));
        assert_eq!(class_of(&r), Some(TrafficClass::Restore));
        assert_eq!(class_of(&JobMeta::new(1u64, 1u32, 1u32, 4)), None);
        assert_ne!(d.job, r.job);
    }

    #[test]
    fn restore_pipeline_dedups_upgrades_and_accounts() {
        let mut p = RestorePipeline::new(1, 2);
        let clean = RestoreTarget {
            shard: 1,
            path: "/f".into(),
            stripe: 0,
            bytes: 1 << 20,
            pin_dirty: false,
        };
        assert!(p.request(clean.clone()));
        // A second request for the same extent dedups…
        assert!(!p.request(clean.clone()));
        // …and a pin-dirty request upgrades the queued entry in place.
        assert!(!p.request(RestoreTarget {
            pin_dirty: true,
            ..clean.clone()
        }));
        assert!(p.request(RestoreTarget {
            stripe: 1,
            ..clean.clone()
        }));
        assert!(p.request(RestoreTarget {
            stripe: 2,
            ..clean.clone()
        }));
        assert_eq!(p.pending_bytes(), 3 << 20);
        assert!(p.is_busy());
        // Admission respects the pipelining depth.
        let r0 = p.admit_next(10, 0).expect("first admit");
        assert!(is_restore(&r0.meta));
        // A restore's cost on the contended burst device is the write-back
        // of the extent into the shard.
        assert_eq!(r0.kind, OpKind::Write);
        assert_eq!(r0.bytes, 1 << 20);
        let _r1 = p.admit_next(11, 0).expect("second admit");
        assert!(p.admit_next(12, 0).is_none(), "depth 2 reached");
        // The upgraded pin survives into flight.
        assert!(p.inflight(10).unwrap().pin_dirty);
        assert_eq!(p.pending_bytes(), 3 << 20);
        // Completion frees depth, re-allows the key, and accounts actuals.
        let done = p.complete(10, 1 << 20).unwrap();
        assert_eq!(done.stripe, 0);
        assert_eq!(p.restored_bytes(), 1 << 20);
        assert!(!p.is_pending(&(1, "/f".to_string(), 0)));
        assert!(p.admit_next(12, 0).is_some());
        let mut status = DrainStatus::default();
        p.fill_status(&mut status);
        assert_eq!(status.restored_ops, 1);
        assert_eq!(status.pending_restore_bytes, 2 << 20);
        assert!(!status.restore_idle());
    }

    #[test]
    fn write_back_guarded_applies_delete_wins() {
        use crate::backing::CapacityTier;
        let tier = CapacityTier::hdd();
        // Normal drain: the path exists after the write-back, the copy
        // stays.
        assert!(write_back_guarded(&tier, "/live", 0, &[1u8; 64], || true));
        assert_eq!(tier.bytes_for("/live"), 64);
        // The race: an unlink lands between the drain's snapshot and its
        // write-back (the existence probe runs after the write and sees the
        // file gone). Delete must win — no stale copy survives in the tier,
        // including copies of *other* stripes written earlier.
        tier.write_back("/gone", 1, &[2u8; 32]);
        assert!(!write_back_guarded(&tier, "/gone", 0, &[2u8; 64], || false));
        assert_eq!(tier.bytes_for("/gone"), 0);
        assert!(!tier.contains("/gone", 0));
        assert!(!tier.contains("/gone", 1));
    }

    #[test]
    fn admission_tracks_inflight_and_capacity() {
        let mut p = DrainPipeline::new(
            1,
            DrainConfig {
                max_inflight: 2,
                ..DrainConfig::default()
            },
        );
        assert_eq!(p.admission_capacity(), 2);
        let r = p.admit(7, "/ckpt".into(), 0, 42, 1 << 20, 100);
        assert_eq!(r.seq, 7);
        assert!(is_drain(&r.meta));
        assert_eq!(r.kind, OpKind::Read);
        assert_eq!(r.bytes, 1 << 20);
        assert_eq!(p.admission_capacity(), 1);
        assert!(p.inflight_keys().contains(&("/ckpt".to_string(), 0)));
        assert!(p.has_inflight_for("/ckpt"));
        let d = p.complete(7).unwrap();
        assert_eq!(d.generation, 42);
        assert_eq!(p.admission_capacity(), 2);
        assert!(!p.has_inflight_for("/ckpt"));
        assert!(p.complete(7).is_none());
    }

    #[test]
    fn status_aggregates_counters() {
        let mut p = DrainPipeline::new(0, DrainConfig::default());
        p.admit(1, "/a".into(), 0, 1, 100, 0);
        p.complete(1);
        p.record_eviction(2, 300);
        let s = p.status(1_000, 400, 100);
        assert_eq!(s.drained_bytes, 100);
        assert_eq!(s.drained_ops, 1);
        assert_eq!(s.evicted_bytes, 300);
        assert_eq!(s.evicted_extents, 2);
        assert_eq!(s.resident_bytes, 1_000);
        assert!(!s.is_clean());
        assert!(p.status(0, 0, 100).is_clean());
    }
}
