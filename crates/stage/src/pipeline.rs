//! The per-server drain pipeline: configuration, the reserved drain job
//! identity, and the bookkeeping of extents in flight between the
//! burst-buffer shard and the capacity tier.
//!
//! The pipeline does not move bytes itself — the server core (or the
//! simulator) reads the extent snapshot from the shard, charges the
//! burst-buffer and capacity devices, and writes to the
//! [`BackingStore`](crate::backing::BackingStore). The pipeline's job is to
//! make that flow *policy-visible*: every drain is an ordinary
//! [`IoRequest`] under the [drain job identity](drain_meta), admitted to the
//! server's [`PolicyEngine`](themis_core::engine::PolicyEngine) (wrapped in a
//! [`StagedEngine`](crate::engine::StagedEngine)), so drain bandwidth is
//! arbitrated exactly like foreground bandwidth.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use themis_core::entity::JobMeta;
use themis_core::request::{IoRequest, OpKind};
use themis_device::DeviceConfig;

/// First job id of the reserved drain-job range. Each server's drain traffic
/// runs under `DRAIN_JOB_BASE + server_index`, so per-server drain streams
/// stay distinguishable in telemetry while [`is_drain`] stays a range check.
///
/// This is the workspace-wide reserved range exported by the core crate
/// ([`themis_core::entity::RESERVED_JOB_BASE`]); the client and server use
/// the core constant to reject client traffic inside it, so the boundary
/// cannot drift between the layers.
pub const DRAIN_JOB_BASE: u64 = themis_core::entity::RESERVED_JOB_BASE;

/// Reserved user id of drain traffic.
pub const DRAIN_USER_ID: u32 = u32::MAX;

/// Reserved group id of drain traffic.
pub const DRAIN_GROUP_ID: u32 = u32::MAX;

/// The job identity drain requests are issued under on `server`.
pub fn drain_meta(server: usize) -> JobMeta {
    JobMeta::new(
        DRAIN_JOB_BASE + server as u64,
        DRAIN_USER_ID,
        DRAIN_GROUP_ID,
        1,
    )
}

/// Whether a request (by its job metadata) is synthesized drain traffic.
pub fn is_drain(meta: &JobMeta) -> bool {
    meta.is_reserved()
}

/// Configuration of one server's drain pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainConfig {
    /// When the shard's resident bytes exceed this watermark, clean (already
    /// drained) extents are evicted…
    pub high_watermark_bytes: u64,
    /// …until resident bytes fall back to this watermark. Eviction never
    /// touches dirty extents — data whose only copy is in the burst buffer
    /// is never dropped.
    pub low_watermark_bytes: u64,
    /// Foreground : drain weight. `8` means foreground traffic collectively
    /// receives 8× the device time of drain traffic while both are
    /// backlogged; when the foreground goes idle, drain expands into the idle
    /// capacity (opportunity fairness, extended to stage-out).
    pub drain_weight: u32,
    /// Maximum number of extents in flight between the shard and the
    /// capacity tier at once (pipelining depth).
    pub max_inflight: usize,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            high_watermark_bytes: 768 << 20,
            low_watermark_bytes: 512 << 20,
            drain_weight: 8,
            max_inflight: 4,
        }
    }
}

impl DrainConfig {
    /// Validates the configuration: watermarks ordered, weight and
    /// pipelining depth non-zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.low_watermark_bytes > self.high_watermark_bytes {
            return Err(format!(
                "low watermark {} exceeds high watermark {}",
                self.low_watermark_bytes, self.high_watermark_bytes
            ));
        }
        if self.drain_weight == 0 {
            return Err("drain weight must be >= 1".to_string());
        }
        if self.max_inflight == 0 {
            return Err("max_inflight must be >= 1".to_string());
        }
        Ok(())
    }
}

/// Configuration of the whole staging subsystem on one server: the capacity
/// tier's device model plus the drain pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagingConfig {
    /// Device model of the capacity tier absorbing drained extents.
    pub backing_device: DeviceConfig,
    /// Drain pipeline parameters.
    pub drain: DrainConfig,
}

impl Default for StagingConfig {
    fn default() -> Self {
        StagingConfig {
            backing_device: DeviceConfig::capacity_hdd(),
            drain: DrainConfig::default(),
        }
    }
}

/// A point-in-time snapshot of one server's staging state, reported through
/// the `DrainStatus` control-plane message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainStatus {
    /// Bytes resident in the burst-buffer shard (clean + dirty).
    pub resident_bytes: u64,
    /// Bytes in dirty extents (not yet drained to the capacity tier).
    pub dirty_bytes: u64,
    /// Bytes stored in the capacity tier.
    pub backing_bytes: u64,
    /// Extents currently in flight between the shard and the capacity tier.
    pub inflight_extents: usize,
    /// Total bytes drained to the capacity tier since boot.
    pub drained_bytes: u64,
    /// Total drain operations completed since boot.
    pub drained_ops: u64,
    /// Total bytes reclaimed by watermark eviction since boot.
    pub evicted_bytes: u64,
    /// Total extents evicted since boot.
    pub evicted_extents: u64,
}

impl DrainStatus {
    /// Whether the shard is fully drained (no dirty bytes, nothing in
    /// flight).
    pub fn is_clean(&self) -> bool {
        self.dirty_bytes == 0 && self.inflight_extents == 0
    }
}

/// One extent travelling through the pipeline.
#[derive(Debug, Clone)]
pub struct InflightDrain {
    /// Path of the file the extent belongs to.
    pub path: String,
    /// Stripe index of the extent.
    pub stripe: u64,
    /// Dirty generation captured when the drain was admitted; the shard only
    /// marks the extent clean if the generation still matches at completion
    /// (a concurrent overwrite re-dirties it).
    pub generation: u64,
    /// Extent length at admission time.
    pub bytes: u64,
}

/// Per-server drain bookkeeping: which extents are in flight, cumulative
/// drain/eviction counters, and admission capacity.
#[derive(Debug)]
pub struct DrainPipeline {
    server: usize,
    config: DrainConfig,
    inflight: HashMap<u64, InflightDrain>,
    inflight_keys: HashSet<(String, u64)>,
    drained_bytes: u64,
    drained_ops: u64,
    evicted_bytes: u64,
    evicted_extents: u64,
}

impl DrainPipeline {
    /// Creates the pipeline of `server` under `config`.
    pub fn new(server: usize, config: DrainConfig) -> Self {
        DrainPipeline {
            server,
            config,
            inflight: HashMap::new(),
            inflight_keys: HashSet::new(),
            drained_bytes: 0,
            drained_ops: 0,
            evicted_bytes: 0,
            evicted_extents: 0,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &DrainConfig {
        &self.config
    }

    /// The drain job identity of this server.
    pub fn meta(&self) -> JobMeta {
        drain_meta(self.server)
    }

    /// How many more drains may be admitted right now.
    pub fn admission_capacity(&self) -> usize {
        self.config.max_inflight.saturating_sub(self.inflight.len())
    }

    /// Extent keys currently in flight (excluded from re-admission).
    pub fn inflight_keys(&self) -> &HashSet<(String, u64)> {
        &self.inflight_keys
    }

    /// Number of extents in flight.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether any in-flight extent belongs to `path`.
    pub fn has_inflight_for(&self, path: &str) -> bool {
        self.inflight_keys.iter().any(|(p, _)| p == path)
    }

    /// Admits a drain of one extent: records it in flight and returns the
    /// [`IoRequest`] to feed to the policy engine. The request is a *read* of
    /// the burst-buffer device (the drain's cost on the contended resource);
    /// the matching capacity-tier write is charged by the caller when the
    /// read completes.
    pub fn admit(
        &mut self,
        seq: u64,
        path: String,
        stripe: u64,
        generation: u64,
        bytes: u64,
        now_ns: u64,
    ) -> IoRequest {
        self.inflight_keys.insert((path.clone(), stripe));
        self.inflight.insert(
            seq,
            InflightDrain {
                path,
                stripe,
                generation,
                bytes,
            },
        );
        IoRequest::new(seq, self.meta(), OpKind::Read, bytes, now_ns)
    }

    /// Looks up an in-flight drain by request sequence number.
    pub fn inflight(&self, seq: u64) -> Option<&InflightDrain> {
        self.inflight.get(&seq)
    }

    /// Completes a drain: removes it from the in-flight set and accounts the
    /// drained bytes. Returns the completed record.
    pub fn complete(&mut self, seq: u64) -> Option<InflightDrain> {
        let d = self.inflight.remove(&seq)?;
        self.inflight_keys.remove(&(d.path.clone(), d.stripe));
        self.drained_bytes += d.bytes;
        self.drained_ops += 1;
        Some(d)
    }

    /// Accounts a watermark eviction of `bytes` across `extents` extents.
    pub fn record_eviction(&mut self, extents: u64, bytes: u64) {
        self.evicted_extents += extents;
        self.evicted_bytes += bytes;
    }

    /// Builds the status snapshot given the shard-side numbers the pipeline
    /// itself does not track.
    pub fn status(&self, resident_bytes: u64, dirty_bytes: u64, backing_bytes: u64) -> DrainStatus {
        DrainStatus {
            resident_bytes,
            dirty_bytes,
            backing_bytes,
            inflight_extents: self.inflight.len(),
            drained_bytes: self.drained_bytes,
            drained_ops: self.drained_ops,
            evicted_bytes: self.evicted_bytes,
            evicted_extents: self.evicted_extents,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_identity_is_reserved_and_per_server() {
        let a = drain_meta(0);
        let b = drain_meta(3);
        assert!(is_drain(&a));
        assert!(is_drain(&b));
        assert_ne!(a.job, b.job);
        assert!(!is_drain(&JobMeta::new(1u64, 1u32, 1u32, 4)));
        // Ordinary job ids are far below the reserved range.
        assert!(!is_drain(&JobMeta::new(1u64 << 40, 1u32, 1u32, 4)));
    }

    #[test]
    fn config_validation() {
        let base = DrainConfig::default();
        assert!(base.validate().is_ok());
        let inverted = DrainConfig {
            low_watermark_bytes: base.high_watermark_bytes + 1,
            ..base
        };
        assert!(inverted.validate().is_err());
        let zero_weight = DrainConfig {
            drain_weight: 0,
            ..base
        };
        assert!(zero_weight.validate().is_err());
        let zero_inflight = DrainConfig {
            max_inflight: 0,
            ..base
        };
        assert!(zero_inflight.validate().is_err());
    }

    #[test]
    fn admission_tracks_inflight_and_capacity() {
        let mut p = DrainPipeline::new(
            1,
            DrainConfig {
                max_inflight: 2,
                ..DrainConfig::default()
            },
        );
        assert_eq!(p.admission_capacity(), 2);
        let r = p.admit(7, "/ckpt".into(), 0, 42, 1 << 20, 100);
        assert_eq!(r.seq, 7);
        assert!(is_drain(&r.meta));
        assert_eq!(r.kind, OpKind::Read);
        assert_eq!(r.bytes, 1 << 20);
        assert_eq!(p.admission_capacity(), 1);
        assert!(p.inflight_keys().contains(&("/ckpt".to_string(), 0)));
        assert!(p.has_inflight_for("/ckpt"));
        let d = p.complete(7).unwrap();
        assert_eq!(d.generation, 42);
        assert_eq!(p.admission_capacity(), 2);
        assert!(!p.has_inflight_for("/ckpt"));
        assert!(p.complete(7).is_none());
    }

    #[test]
    fn status_aggregates_counters() {
        let mut p = DrainPipeline::new(0, DrainConfig::default());
        p.admit(1, "/a".into(), 0, 1, 100, 0);
        p.complete(1);
        p.record_eviction(2, 300);
        let s = p.status(1_000, 400, 100);
        assert_eq!(s.drained_bytes, 100);
        assert_eq!(s.drained_ops, 1);
        assert_eq!(s.evicted_bytes, 300);
        assert_eq!(s.evicted_extents, 2);
        assert_eq!(s.resident_bytes, 1_000);
        assert!(!s.is_clean());
        assert!(p.status(0, 0, 100).is_clean());
    }
}
