//! Internal traffic classes: the taxonomy of system-synthesized I/O the
//! burst buffer moves on its own behalf, each admitted through the policy
//! engine like foreground traffic.
//!
//! The paper's core claim is that *all* I/O on the burst buffer is
//! arbitrated by one fine-grained policy engine. Foreground traffic carries
//! client job identities; everything the system synthesizes — stage-out
//! drains, stage-in restores, scrubbing, rebalancing, and durability
//! replication — runs under a [`TrafficClass`] identity allocated from the
//! reserved job-id range
//! ([`RESERVED_JOB_BASE`](themis_core::entity::RESERVED_JOB_BASE)),
//! sub-divided per class
//! ([`RESERVED_CLASS_SPAN`](themis_core::entity::RESERVED_CLASS_SPAN)) so
//! telemetry can attribute every byte to the class (and server) that moved
//! it.
//!
//! ## The class registry
//!
//! Every per-class fact — the reserved sub-range index, the display name,
//! the telemetry lane key, the default foreground:class weight, and whether
//! the class's pipeline synthesizes traffic without being asked — lives in
//! one table, [`TRAFFIC_CLASSES`]. The first four classes were carved by
//! hand across N call sites; adding the fifth (Replicate) made that a
//! registry: a new class is one [`TrafficClassDef`] row, and `index()`,
//! `name()`, [`ClassWeights::default`] and the engine's lane construction
//! all follow the table.
//!
//! | class | job-id sub-range | direction | default weight |
//! |-------|------------------|-----------|----------------|
//! | [`TrafficClass::Drain`] | `base + [0, 4096)` | burst → capacity | 8 |
//! | [`TrafficClass::Restore`] | `base + [4096, 8192)` | capacity → burst | 8 |
//! | [`TrafficClass::Scrub`] | `base + [8192, 12288)` | capacity verify/repair | 16 |
//! | [`TrafficClass::Rebalance`] | `base + [12288, 16384)` | shard-map migration | 16 |
//! | [`TrafficClass::Replicate`] | `base + [16384, 20480)` | burst → replica tier | 16 |
//!
//! Drain and Restore are *demand-driven*: their requests are synthesized in
//! response to foreground traffic (dirty writes, misses on evicted
//! extents). Scrub and Rebalance are *maintenance* classes synthesized from
//! capacity-tier state alone. Replicate is *debt-driven*: each acknowledged
//! write whose [`DurabilityMode`](themis_core::durability::DurabilityMode)
//! owes a replica queues bytes the class pays down under its policy weight
//! (see [`ReplicatePipeline`](crate::replicate::ReplicatePipeline)).
//!
//! Within each sub-range, instance `i` is the traffic of server `i`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use themis_core::entity::{reserved_job_id, JobId, JobMeta};

/// One class of system-internal traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Stage-out: dirty burst-buffer extents written back to the capacity
    /// tier so NVMe space can be reclaimed.
    Drain,
    /// Stage-in: evicted extents copied back from the capacity tier —
    /// explicit `StageIn` requests, transparent read-through of evicted
    /// data, and restore-for-write merges all run under this class.
    Restore,
    /// Background integrity scrubbing of the capacity tier: checksum
    /// verification of stored extents, repair from the burst tier where a
    /// clean copy is resident, quarantine otherwise (see
    /// [`ScrubPipeline`](crate::scrub::ScrubPipeline)).
    Scrub,
    /// Background extent migration after a shard-map change on the
    /// sharded capacity tier: re-placing extents onto their new replica
    /// sets checksum-verified (see
    /// [`RebalancePipeline`](crate::rebalance::RebalancePipeline)).
    Rebalance,
    /// Asynchronous durability replication: acknowledged writes whose
    /// durability mode owes a replica are copied to the replica tier under
    /// this class's weight (see
    /// [`ReplicatePipeline`](crate::replicate::ReplicatePipeline)).
    Replicate,
}

/// One row of the traffic-class registry: everything the system knows about
/// a class, in one place.
///
/// The row owns the class's reserved sub-range assignment (`index`), its
/// display name, the telemetry lane key its [`MetricsRegistry`] series and
/// trace slots carry, its default foreground:class WFQ weight, and whether
/// the class's pipeline synthesizes traffic by default. Call sites read the
/// table through [`TrafficClass::def`] instead of matching on the enum, so
/// registering a future class touches this table and the enum — nothing
/// else.
///
/// [`MetricsRegistry`]: themis_telemetry::MetricsRegistry
#[derive(Debug, Clone, Copy)]
pub struct TrafficClassDef {
    /// The class this row defines.
    pub class: TrafficClass,
    /// The class's index into the reserved job-id range's sub-range layout
    /// (the `class` argument of
    /// [`reserved_job_id`]).
    ///
    /// [`reserved_job_id`]: themis_core::entity::reserved_job_id
    pub index: u64,
    /// Short lowercase display name for logs, status output, and the
    /// weights DSL.
    pub name: &'static str,
    /// Telemetry lane key: the class component of
    /// [`SeriesKey::class`](themis_telemetry::SeriesKey) series and the
    /// trace-lane name. Identical to `name` for every class so operators
    /// see one vocabulary.
    pub lane: &'static str,
    /// Default foreground:class weight
    /// ([`ClassWeights::default`] takes its values from here).
    pub default_weight: u32,
    /// Whether the class's pipeline synthesizes traffic by default.
    /// Demand-driven classes (drain, restore) are always effectively
    /// enabled; maintenance and debt-driven classes start where their PRs
    /// left their `DrainConfig` flags.
    pub default_enabled: bool,
}

/// The traffic-class registry: one row per class, in reserved sub-range
/// order. [`TrafficClass::ALL`], `index()`, `name()` and
/// [`ClassWeights::default`] are all derived from this table.
pub const TRAFFIC_CLASSES: [TrafficClassDef; TrafficClass::COUNT] = [
    TrafficClassDef {
        class: TrafficClass::Drain,
        index: 0,
        name: "drain",
        lane: "drain",
        default_weight: 8,
        default_enabled: true,
    },
    TrafficClassDef {
        class: TrafficClass::Restore,
        index: 1,
        name: "restore",
        lane: "restore",
        default_weight: 8,
        default_enabled: true,
    },
    TrafficClassDef {
        class: TrafficClass::Scrub,
        index: 2,
        name: "scrub",
        lane: "scrub",
        // The maintenance classes default to a conservative 16:1 — pure
        // background traffic with no foreground waiting on it.
        default_weight: 16,
        default_enabled: false,
    },
    TrafficClassDef {
        class: TrafficClass::Rebalance,
        index: 3,
        name: "rebalance",
        lane: "rebalance",
        default_weight: 16,
        default_enabled: true,
    },
    TrafficClassDef {
        class: TrafficClass::Replicate,
        index: 4,
        name: "replicate",
        lane: "replicate",
        // Replication only has work when a durability spec creates debt;
        // the class stays off until one does.
        default_weight: 16,
        default_enabled: false,
    },
];

impl TrafficClass {
    /// Number of registered classes.
    pub const COUNT: usize = 5;

    /// Every defined class, in sub-range order (derived from
    /// [`TRAFFIC_CLASSES`]).
    pub const ALL: [TrafficClass; TrafficClass::COUNT] = {
        let mut all = [TrafficClass::Drain; TrafficClass::COUNT];
        let mut i = 0;
        while i < TrafficClass::COUNT {
            all[i] = TRAFFIC_CLASSES[i].class;
            i += 1;
        }
        all
    };

    /// This class's registry row. Declaration order matches table order
    /// (checked by the `registry_rows_match_declaration_order` test), so
    /// the lookup is a direct index.
    pub fn def(self) -> &'static TrafficClassDef {
        &TRAFFIC_CLASSES[self as usize]
    }

    /// This class's index into the reserved range's class layout.
    pub fn index(self) -> u64 {
        self.def().index
    }

    /// First job id of this class's sub-range.
    pub fn job_base(self) -> u64 {
        reserved_job_id(self.index(), 0).0
    }

    /// The class a job id belongs to (`None` for client jobs and for
    /// reserved sub-ranges no class claims yet).
    pub fn of(job: JobId) -> Option<TrafficClass> {
        let class = job.reserved_class()?;
        TrafficClass::ALL.into_iter().find(|c| c.index() == class)
    }

    /// The job identity this class's traffic runs under on `server`. The
    /// user/group ids are taken from the top of the id space, one per class,
    /// so user- and group-scoped telemetry also separates the classes.
    pub fn meta(self, server: usize) -> JobMeta {
        let scope = u32::MAX - self.index() as u32;
        JobMeta::new(
            reserved_job_id(self.index(), server as u64),
            scope,
            scope,
            1,
        )
    }

    /// Short lowercase name for logs and status output (from the registry).
    pub fn name(self) -> &'static str {
        self.def().name
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a [`ClassWeights`] DSL string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassWeightsError {
    /// A token named no registered traffic class.
    UnknownClass(String),
    /// The same class appeared twice.
    DuplicateClass(String),
    /// A token was not `name=weight`, or the weight was not a positive
    /// integer.
    BadToken(String),
}

impl fmt::Display for ClassWeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassWeightsError::UnknownClass(c) => {
                write!(f, "unknown traffic class `{c}` in weights spec")
            }
            ClassWeightsError::DuplicateClass(c) => {
                write!(f, "traffic class `{c}` listed twice in weights spec")
            }
            ClassWeightsError::BadToken(t) => write!(
                f,
                "bad weights token `{t}` (expected `class=weight` with a positive integer weight)"
            ),
        }
    }
}

impl std::error::Error for ClassWeightsError {}

/// The foreground:class weight — and enablement — of every internal traffic
/// class.
///
/// A weight of `w` means foreground traffic collectively receives `w`× the
/// device time of that class while both are backlogged — derived through the
/// policy crate's [`WeightedLevel`](themis_core::policy::WeightedLevel)
/// machinery exactly like a `user[w]-…` premium tier (see
/// [`StagedEngine`](crate::engine::StagedEngine)).
///
/// Historically these knobs accreted on `DrainConfig` one field pair per
/// class (`scrub_weight` + `scrub_enabled`, …). They are unified here behind
/// a per-class builder — [`ClassWeights::enable`] / [`ClassWeights::disable`]
/// — plus a `"drain=8,scrub=16,replicate=16"` DSL that round-trips through
/// `Display`/`FromStr`: the canonical form lists the *enabled* classes
/// in registry order; classes left unlisted are disabled at their registry
/// default weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassWeights {
    weights: [u32; TrafficClass::COUNT],
    enabled: [bool; TrafficClass::COUNT],
}

impl Default for ClassWeights {
    fn default() -> Self {
        let mut weights = [1; TrafficClass::COUNT];
        let mut enabled = [false; TrafficClass::COUNT];
        for (i, def) in TRAFFIC_CLASSES.iter().enumerate() {
            weights[i] = def.default_weight;
            enabled[i] = def.default_enabled;
        }
        ClassWeights { weights, enabled }
    }
}

impl ClassWeights {
    /// Every class at the same foreground:class weight (enablement keeps the
    /// registry defaults).
    pub fn uniform(weight: u32) -> Self {
        let weight = weight.max(1);
        ClassWeights {
            weights: [weight; TrafficClass::COUNT],
            ..ClassWeights::default()
        }
    }

    /// Enables `class` at foreground:class weight `weight` (builder style).
    pub fn enable(mut self, class: TrafficClass, weight: u32) -> Self {
        self.weights[class as usize] = weight;
        self.enabled[class as usize] = true;
        self
    }

    /// Sets `class`'s weight without touching its enablement.
    pub fn with_weight(mut self, class: TrafficClass, weight: u32) -> Self {
        self.weights[class as usize] = weight;
        self
    }

    /// Disables `class`, resetting its weight to the registry default so
    /// the Display/FromStr round trip stays exact (disabled classes are not
    /// printed).
    pub fn disable(mut self, class: TrafficClass) -> Self {
        self.enabled[class as usize] = false;
        self.weights[class as usize] = class.def().default_weight;
        self
    }

    /// The weight of one class (clamped to ≥ 1: a zero weight would starve
    /// the WFQ lane forever).
    pub fn weight(&self, class: TrafficClass) -> u32 {
        self.weights[class as usize].max(1)
    }

    /// Whether `class`'s pipeline should synthesize traffic. Demand-driven
    /// classes (drain, restore) carry the flag too, but their pipelines run
    /// on demand regardless.
    pub fn is_enabled(&self, class: TrafficClass) -> bool {
        self.enabled[class as usize]
    }

    /// Validates the weights: every class's raw weight must be ≥ 1. The
    /// accessor clamps regardless, but a configured zero is a mistake worth
    /// reporting at construction time rather than silently rounding up.
    pub fn validate(&self) -> Result<(), String> {
        for class in TrafficClass::ALL {
            if self.weights[class as usize] == 0 {
                return Err(format!("{} weight must be >= 1", class.name()));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ClassWeights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for class in TrafficClass::ALL {
            if !self.is_enabled(class) {
                continue;
            }
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{}={}", class.name(), self.weight(class))?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for ClassWeights {
    type Err = ClassWeightsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim().to_ascii_lowercase();
        let mut weights = ClassWeights::default();
        for class in TrafficClass::ALL {
            weights = weights.disable(class);
        }
        for token in s.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (name, weight_str) = token
                .split_once('=')
                .ok_or_else(|| ClassWeightsError::BadToken(token.to_string()))?;
            let class = TrafficClass::ALL
                .into_iter()
                .find(|c| c.name() == name)
                .ok_or_else(|| ClassWeightsError::UnknownClass(name.to_string()))?;
            if weights.is_enabled(class) {
                return Err(ClassWeightsError::DuplicateClass(name.to_string()));
            }
            let weight: u32 = weight_str
                .parse()
                .ok()
                .filter(|w| *w > 0)
                .ok_or_else(|| ClassWeightsError::BadToken(token.to_string()))?;
            weights = weights.enable(class, weight);
        }
        Ok(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_core::entity::RESERVED_JOB_BASE;

    #[test]
    fn registry_rows_match_declaration_order() {
        // `def()` indexes the table by enum discriminant; the registry's
        // contract is that row i defines the class declared i-th, with
        // contiguous sub-range indexes and the shared name/lane vocabulary.
        for (i, def) in TRAFFIC_CLASSES.iter().enumerate() {
            assert_eq!(def.class as usize, i, "{}", def.name);
            assert_eq!(def.index, i as u64, "{}", def.name);
            assert_eq!(def.name, def.lane, "{}", def.name);
            assert_eq!(TrafficClass::ALL[i], def.class);
        }
    }

    #[test]
    fn classes_partition_without_aliasing() {
        for class in TrafficClass::ALL {
            for server in [0usize, 1, 4095] {
                let meta = class.meta(server);
                assert!(meta.is_reserved(), "{class}");
                assert_eq!(TrafficClass::of(meta.job), Some(class), "{class}");
                assert_eq!(meta.job.reserved_instance(), Some(server as u64));
            }
        }
        // Distinct classes on the same server get distinct jobs and users.
        let d = TrafficClass::Drain.meta(3);
        let r = TrafficClass::Restore.meta(3);
        assert_ne!(d.job, r.job);
        assert_ne!(d.user, r.user);
        // Client jobs belong to no class.
        assert_eq!(TrafficClass::of(JobId(42)), None);
    }

    #[test]
    fn drain_sub_range_starts_at_the_legacy_base() {
        // PR 2's drain traffic ran under RESERVED_JOB_BASE + server; class 0
        // preserves those ids exactly, so telemetry across versions agrees.
        assert_eq!(TrafficClass::Drain.job_base(), RESERVED_JOB_BASE);
        assert_eq!(TrafficClass::Drain.meta(5).job, reserved_job_id(0, 5));
    }

    #[test]
    fn weights_clamp_and_default() {
        let w = ClassWeights::default();
        assert_eq!(w.weight(TrafficClass::Drain), 8);
        assert_eq!(w.weight(TrafficClass::Scrub), 16);
        assert_eq!(w.weight(TrafficClass::Replicate), 16);
        assert!(!w.is_enabled(TrafficClass::Scrub));
        assert!(w.is_enabled(TrafficClass::Rebalance));
        assert!(!w.is_enabled(TrafficClass::Replicate));
        let z = ClassWeights::default().with_weight(TrafficClass::Drain, 0);
        assert_eq!(z.weight(TrafficClass::Drain), 1);
        assert_eq!(ClassWeights::uniform(0).weight(TrafficClass::Restore), 1);
    }

    #[test]
    fn builder_round_trips_through_the_dsl() {
        let w = ClassWeights::default()
            .enable(TrafficClass::Scrub, 16)
            .enable(TrafficClass::Replicate, 16)
            .enable(TrafficClass::Drain, 4);
        let text = w.to_string();
        assert_eq!(text, "drain=4,restore=8,scrub=16,rebalance=16,replicate=16");
        assert_eq!(text.parse::<ClassWeights>().unwrap(), w);
        // The ISSUE's example form: unlisted classes parse back disabled.
        let sparse: ClassWeights = "drain=8,scrub=16,replicate=16".parse().unwrap();
        assert!(sparse.is_enabled(TrafficClass::Scrub));
        assert!(!sparse.is_enabled(TrafficClass::Restore));
        assert_eq!(sparse.weight(TrafficClass::Restore), 8);
        assert_eq!(sparse.to_string().parse::<ClassWeights>().unwrap(), sparse);
    }

    #[test]
    fn dsl_rejects_garbage() {
        for (input, why) in [
            ("drain", "missing weight"),
            ("drain=0", "zero weight"),
            ("drain=x", "non-numeric weight"),
            ("compact=8", "unknown class"),
            ("drain=8,drain=4", "duplicate class"),
        ] {
            assert!(input.parse::<ClassWeights>().is_err(), "{why}: {input}");
        }
    }
}
