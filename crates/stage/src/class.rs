//! Internal traffic classes: the taxonomy of system-synthesized I/O the
//! burst buffer moves on its own behalf, each admitted through the policy
//! engine like foreground traffic.
//!
//! The paper's core claim is that *all* I/O on the burst buffer is
//! arbitrated by one fine-grained policy engine. Foreground traffic carries
//! client job identities; everything the system synthesizes — stage-out
//! drains, stage-in restores, and future scrubbing/rebalancing — runs under
//! a [`TrafficClass`] identity allocated from the reserved job-id range
//! ([`RESERVED_JOB_BASE`](themis_core::entity::RESERVED_JOB_BASE)),
//! sub-divided per class
//! ([`RESERVED_CLASS_SPAN`](themis_core::entity::RESERVED_CLASS_SPAN)) so
//! telemetry can attribute every byte to the class (and server) that moved
//! it.
//!
//! | class | job-id sub-range | direction | weight |
//! |-------|------------------|-----------|--------|
//! | [`TrafficClass::Drain`] | `base + [0, 4096)` | burst → capacity | [`ClassWeights::drain`] |
//! | [`TrafficClass::Restore`] | `base + [4096, 8192)` | capacity → burst | [`ClassWeights::restore`] |
//! | [`TrafficClass::Scrub`] | `base + [8192, 12288)` | capacity verify/repair | [`ClassWeights::scrub`] |
//! | [`TrafficClass::Rebalance`] | `base + [12288, 16384)` | shard-map migration | [`ClassWeights::rebalance`] |
//!
//! Drain and Restore are *demand-driven*: their requests are synthesized in
//! response to foreground traffic (dirty writes, misses on evicted
//! extents). Scrub is the first *maintenance* class: its requests are
//! synthesized from capacity-tier state alone
//! ([`ScrubPipeline`](crate::scrub::ScrubPipeline)) and flow continuously
//! rather than in bursts — which is exactly why it is the cleanest stress
//! test of lane fairness.
//!
//! Within each sub-range, instance `i` is the traffic of server `i`.

use serde::{Deserialize, Serialize};
use themis_core::entity::{reserved_job_id, JobId, JobMeta};

/// One class of system-internal traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Stage-out: dirty burst-buffer extents written back to the capacity
    /// tier so NVMe space can be reclaimed.
    Drain,
    /// Stage-in: evicted extents copied back from the capacity tier —
    /// explicit `StageIn` requests, transparent read-through of evicted
    /// data, and restore-for-write merges all run under this class.
    Restore,
    /// Background integrity scrubbing of the capacity tier: checksum
    /// verification of stored extents, repair from the burst tier where a
    /// clean copy is resident, quarantine otherwise (see
    /// [`ScrubPipeline`](crate::scrub::ScrubPipeline)).
    Scrub,
    /// Background extent migration after a shard-map change on the
    /// sharded capacity tier: re-placing extents onto their new replica
    /// sets checksum-verified (see
    /// [`RebalancePipeline`](crate::rebalance::RebalancePipeline)).
    Rebalance,
}

impl TrafficClass {
    /// Every defined class, in sub-range order.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::Drain,
        TrafficClass::Restore,
        TrafficClass::Scrub,
        TrafficClass::Rebalance,
    ];

    /// This class's index into the reserved range's class layout.
    pub fn index(self) -> u64 {
        match self {
            TrafficClass::Drain => 0,
            TrafficClass::Restore => 1,
            TrafficClass::Scrub => 2,
            TrafficClass::Rebalance => 3,
        }
    }

    /// First job id of this class's sub-range.
    pub fn job_base(self) -> u64 {
        reserved_job_id(self.index(), 0).0
    }

    /// The class a job id belongs to (`None` for client jobs and for
    /// reserved sub-ranges no class claims yet).
    pub fn of(job: JobId) -> Option<TrafficClass> {
        let class = job.reserved_class()?;
        TrafficClass::ALL.into_iter().find(|c| c.index() == class)
    }

    /// The job identity this class's traffic runs under on `server`. The
    /// user/group ids are taken from the top of the id space, one per class,
    /// so user- and group-scoped telemetry also separates the classes.
    pub fn meta(self, server: usize) -> JobMeta {
        let scope = u32::MAX - self.index() as u32;
        JobMeta::new(
            reserved_job_id(self.index(), server as u64),
            scope,
            scope,
            1,
        )
    }

    /// Short lowercase name for logs and status output.
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::Drain => "drain",
            TrafficClass::Restore => "restore",
            TrafficClass::Scrub => "scrub",
            TrafficClass::Rebalance => "rebalance",
        }
    }
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The foreground:class weight of every internal traffic class.
///
/// A weight of `w` means foreground traffic collectively receives `w`× the
/// device time of that class while both are backlogged — derived through the
/// policy crate's [`WeightedLevel`](themis_core::policy::WeightedLevel)
/// machinery exactly like a `user[w]-…` premium tier (see
/// [`StagedEngine`](crate::engine::StagedEngine)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassWeights {
    /// Foreground : drain weight.
    pub drain: u32,
    /// Foreground : restore weight.
    pub restore: u32,
    /// Foreground : scrub weight
    /// ([`DrainConfig::scrub_weight`](crate::pipeline::DrainConfig::scrub_weight)).
    pub scrub: u32,
    /// Foreground : rebalance weight
    /// ([`DrainConfig::rebalance_weight`](crate::pipeline::DrainConfig::rebalance_weight)).
    pub rebalance: u32,
}

impl Default for ClassWeights {
    fn default() -> Self {
        ClassWeights {
            drain: 8,
            restore: 8,
            // The maintenance classes default to a conservative 16:1 —
            // pure background traffic with no foreground waiting on it.
            scrub: 16,
            rebalance: 16,
        }
    }
}

impl ClassWeights {
    /// Every class at the same foreground:class weight.
    pub fn uniform(weight: u32) -> Self {
        let weight = weight.max(1);
        ClassWeights {
            drain: weight,
            restore: weight,
            scrub: weight,
            rebalance: weight,
        }
    }

    /// The weight of one class.
    pub fn weight(&self, class: TrafficClass) -> u32 {
        let w = match class {
            TrafficClass::Drain => self.drain,
            TrafficClass::Restore => self.restore,
            TrafficClass::Scrub => self.scrub,
            TrafficClass::Rebalance => self.rebalance,
        };
        w.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_core::entity::RESERVED_JOB_BASE;

    #[test]
    fn classes_partition_without_aliasing() {
        for class in TrafficClass::ALL {
            for server in [0usize, 1, 4095] {
                let meta = class.meta(server);
                assert!(meta.is_reserved(), "{class}");
                assert_eq!(TrafficClass::of(meta.job), Some(class), "{class}");
                assert_eq!(meta.job.reserved_instance(), Some(server as u64));
            }
        }
        // Distinct classes on the same server get distinct jobs and users.
        let d = TrafficClass::Drain.meta(3);
        let r = TrafficClass::Restore.meta(3);
        assert_ne!(d.job, r.job);
        assert_ne!(d.user, r.user);
        // Client jobs belong to no class.
        assert_eq!(TrafficClass::of(JobId(42)), None);
    }

    #[test]
    fn drain_sub_range_starts_at_the_legacy_base() {
        // PR 2's drain traffic ran under RESERVED_JOB_BASE + server; class 0
        // preserves those ids exactly, so telemetry across versions agrees.
        assert_eq!(TrafficClass::Drain.job_base(), RESERVED_JOB_BASE);
        assert_eq!(TrafficClass::Drain.meta(5).job, reserved_job_id(0, 5));
    }

    #[test]
    fn weights_clamp_and_default() {
        let w = ClassWeights::default();
        assert_eq!(w.weight(TrafficClass::Drain), 8);
        assert_eq!(w.weight(TrafficClass::Scrub), 16);
        let z = ClassWeights {
            drain: 0,
            ..ClassWeights::default()
        };
        assert_eq!(z.weight(TrafficClass::Drain), 1);
        assert_eq!(ClassWeights::uniform(0).weight(TrafficClass::Restore), 1);
    }
}
