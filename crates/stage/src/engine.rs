//! [`StagedEngine`]: a policy-engine decorator that arbitrates foreground
//! traffic against synthesized internal traffic classes (drain, restore, and
//! future scrub/rebalance).
//!
//! The server holds one `Box<dyn PolicyEngine>`; when staging is enabled that
//! box *is* a `StagedEngine` wrapping the configured foreground engine
//! (ThemisIO statistical tokens, FIFO, GIFT, TBF — anything). Requests under
//! a [`TrafficClass`] identity are queued FIFO in that class's lane inside
//! the decorator; all other calls pass through, so live `SetPolicy` swaps,
//! share telemetry and the epoch-boundary contract are untouched.
//!
//! # The foreground:class weights
//!
//! Each class's split against the foreground is start-time weighted fair
//! queuing. The class weights are not ad-hoc numbers: they are derived
//! through the policy crate's own [`WeightedLevel`] machinery by evaluating
//! a one-tier `job[w]-fair` policy over two pseudo-jobs (foreground = the
//! premium tenant, the class = its peer) with [`compute_shares`]. A weight
//! of 8 therefore yields shares 8/9 : 1/9, exactly the semantics `user[8]-…`
//! has for premium users — the paper's single-parameter policy language,
//! extended to every internal byte the buffer moves.
//!
//! # Two-level arbitration
//!
//! Selection is two-level WFQ:
//!
//! 1. the backlogged class lanes compete among themselves on a lane-local
//!    virtual time (`u`), so drain and restore stay mutually fair at their
//!    weight ratio even while the foreground is throttled;
//! 2. the winning lane competes with the foreground on the
//!    foreground-facing virtual time (`v`).
//!
//! When one side has nothing eligible the other expands into the idle
//! capacity and the idle side's virtual time is clamped forward, so neither
//! accumulates credit or debt across idle periods (opportunity fairness, §3
//! of the paper, applied to every internal class). Class service consumed
//! while the foreground is *throttled* (backlogged but ineligible — e.g.
//! TBF out of tokens) is charged lane-locally but **not** against the
//! foreground: charging it would bank class debt across the throttled
//! window and starve the class once the foreground becomes eligible again.

use crate::class::{ClassWeights, TrafficClass};
use rand::RngCore;
use std::collections::VecDeque;
use themis_core::engine::PolicyEngine;
use themis_core::entity::{JobId, JobMeta};
use themis_core::job_table::JobTable;
use themis_core::policy::{Level, Policy, PolicySpec, WeightedLevel};
use themis_core::request::{Completion, IoRequest};
use themis_core::shares::{compute_shares, ShareMap};
use themis_telemetry::{
    Counter, DecisionTrace, MetricsRegistry, SeriesKey, TraceDump, TraceEvent, TraceKind, TraceLane,
};

/// The trace lane of a traffic class (both enumerate the class sub-ranges
/// in the same index order).
fn lane_of(class: TrafficClass) -> TraceLane {
    TraceLane::from_class_index(class.index())
}

/// Derives the (foreground, class) share split for `weight` via the policy
/// crate's weighted-tier machinery (see the [module docs](self)).
fn staged_shares(weight: u32) -> (f64, f64) {
    let spec = PolicySpec::new([WeightedLevel::weighted(Level::Job, weight.max(1))])
        .expect("a single weighted job tier is always a valid policy");
    let policy = Policy::Fair(spec);
    // Two pseudo-jobs: the premium tenant (lowest job id) is the foreground
    // class, its peer is the internal class.
    let foreground = JobMeta::new(0u64, 0u32, 0u32, 1);
    let class = JobMeta::new(1u64, 1u32, 1u32, 1);
    let shares = compute_shares(&policy, &[foreground, class]);
    (shares.share(JobId(0)), shares.share(JobId(1)))
}

/// One internal traffic class's scheduling lane (indexed by
/// [`TrafficClass::index`] in [`StagedEngine::lanes`]).
struct ClassLane {
    queue: VecDeque<IoRequest>,
    /// Service rate relative to the foreground's 1.0, derived from the
    /// pairwise [`staged_shares`] split (`class/foreground = 1/w`).
    rate: f64,
    /// Foreground-facing virtual time (normalised service vs the
    /// foreground).
    v: f64,
    /// Lane-local virtual time (normalised service vs the other lanes).
    u: f64,
}

impl ClassLane {
    fn new(weight: u32) -> Self {
        let (fg, cl) = staged_shares(weight);
        ClassLane {
            queue: VecDeque::new(),
            rate: cl / fg,
            v: 0.0,
            u: 0.0,
        }
    }
}

/// Pre-resolved registry handles for one class lane. Resolution happens once
/// at [`StagedEngine::attach_telemetry`] time; records are plain atomic adds
/// — the registry lock never sits on the select path.
struct LaneStats {
    admitted_bytes: Counter,
    charged_bytes: Counter,
    uncharged_bytes: Counter,
}

/// Handles the staged scheduler records through once telemetry is attached.
struct StageTelemetry {
    fg_selected_bytes: Counter,
    /// Indexed by [`TrafficClass::index`], like [`StagedEngine::lanes`].
    lanes: Vec<LaneStats>,
}

/// A [`PolicyEngine`] decorator that schedules internal traffic classes
/// alongside the wrapped foreground engine at configurable
/// foreground:class weights.
pub struct StagedEngine {
    inner: Box<dyn PolicyEngine>,
    lanes: Vec<ClassLane>,
    weights: ClassWeights,
    /// Normalised virtual service of the foreground (rate 1.0).
    v_foreground: f64,
    /// Registry handles (None until [`StagedEngine::attach_telemetry`];
    /// recording and tracing are skipped entirely while detached, so
    /// standalone engines pay nothing).
    telemetry: Option<StageTelemetry>,
    /// Bounded ring of scheduler decisions (no-op without the telemetry
    /// crate's `trace` feature).
    trace: DecisionTrace,
    /// Recording server's index (set by `attach_telemetry`).
    server: u32,
    /// Policy epoch stamped onto trace events (advanced by the server on
    /// every accepted `SetPolicy`).
    epoch: u64,
}

impl StagedEngine {
    /// Wraps `inner` with every class at a foreground:class weight of
    /// `weight`:1 (the PR 2 drain-only constructor, kept because a single
    /// knob is the right interface for simple deployments and tests).
    pub fn new(inner: Box<dyn PolicyEngine>, weight: u32) -> Self {
        Self::with_weights(inner, ClassWeights::uniform(weight))
    }

    /// Wraps `inner` with per-class foreground:class weights.
    pub fn with_weights(inner: Box<dyn PolicyEngine>, weights: ClassWeights) -> Self {
        let lanes = TrafficClass::ALL
            .into_iter()
            .map(|class| ClassLane::new(weights.weight(class)))
            .collect();
        StagedEngine {
            inner,
            lanes,
            weights,
            v_foreground: 0.0,
            telemetry: None,
            trace: DecisionTrace::default(),
            server: 0,
            epoch: 0,
        }
    }

    /// Resolves this engine's per-lane registry handles and enables decision
    /// tracing. Call once at construction time (the server does, in
    /// `ServerCore::with_backing`); until then the engine records nothing and
    /// the select hot path pays nothing.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry, server: usize) {
        self.server = server as u32;
        let lanes = TrafficClass::ALL
            .into_iter()
            .map(|class| {
                let key = SeriesKey::class(server, class.name());
                LaneStats {
                    admitted_bytes: registry.counter(key, "admitted_bytes"),
                    charged_bytes: registry.counter(key, "selected_charged_bytes"),
                    uncharged_bytes: registry.counter(key, "selected_uncharged_bytes"),
                }
            })
            .collect();
        self.telemetry = Some(StageTelemetry {
            fg_selected_bytes: registry
                .counter(SeriesKey::class(server, "foreground"), "selected_bytes"),
            lanes,
        });
    }

    /// Stamps `epoch` onto subsequent trace events (the server advances it on
    /// every accepted live policy swap, so a dump shows which policy was in
    /// force at each decision).
    pub fn set_trace_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The policy epoch currently stamped onto trace events.
    pub fn trace_epoch(&self) -> u64 {
        self.epoch
    }

    /// The newest `max` retained scheduler decisions, oldest first.
    pub fn trace_dump(&self, max: usize) -> TraceDump {
        self.trace.dump(max)
    }

    /// Records one decision into the ring (skipped entirely while telemetry
    /// is detached, so the standalone hot path stays untouched).
    #[inline]
    fn trace_event(
        &mut self,
        now_ns: u64,
        kind: TraceKind,
        lane: TraceLane,
        job: u64,
        bytes: u64,
        lane_vtime: f64,
    ) {
        if self.telemetry.is_none() {
            return;
        }
        self.trace_event_attached(now_ns, kind, lane, job, bytes, lane_vtime);
    }

    /// The recording half of [`StagedEngine::trace_event`], kept out of
    /// line. Inlining it bloats `select`/`admit`/`complete` enough that
    /// even a *detached* engine (which only executes the `is_none` guard)
    /// measurably slows down from the code-size alone; a detached engine
    /// must pay nothing, and an attached one pays one call.
    #[inline(never)]
    fn trace_event_attached(
        &mut self,
        now_ns: u64,
        kind: TraceKind,
        lane: TraceLane,
        job: u64,
        bytes: u64,
        lane_vtime: f64,
    ) {
        self.trace.record(TraceEvent {
            now_ns,
            server: self.server,
            kind,
            lane,
            job,
            bytes,
            lane_vtime,
            fg_vtime: self.v_foreground,
            epoch: self.epoch,
        });
    }

    /// The configured foreground:drain weight (legacy single-knob view).
    pub fn weight(&self) -> u32 {
        self.weights.weight(TrafficClass::Drain)
    }

    /// The configured per-class weights.
    pub fn weights(&self) -> ClassWeights {
        self.weights
    }

    /// The nominal (foreground, class) share split of one class.
    pub fn class_shares_of(&self, class: TrafficClass) -> (f64, f64) {
        staged_shares(self.weights.weight(class))
    }

    /// The nominal (foreground, drain) share split (legacy view of
    /// [`StagedEngine::class_shares_of`]).
    pub fn class_shares(&self) -> (f64, f64) {
        self.class_shares_of(TrafficClass::Drain)
    }

    /// Number of queued requests of one class.
    pub fn queued_class(&self, class: TrafficClass) -> usize {
        self.lanes[class.index() as usize].queue.len()
    }

    /// Number of queued drain requests (legacy view).
    pub fn drain_queued(&self) -> usize {
        self.queued_class(TrafficClass::Drain)
    }

    /// The virtual cost of serving a request: its payload, with metadata
    /// operations charged a nominal byte so they are not free.
    fn cost(request: &IoRequest) -> f64 {
        request.bytes.max(1) as f64
    }

    /// Clamps the virtual time of idle parties forward so idle periods
    /// accumulate neither credit nor debt.
    fn clamp_idle(&mut self) {
        // Foreground-facing times: an idle lane resumes at parity with the
        // foreground; an idle foreground resumes at parity with the least-
        // served backlogged lane.
        let v_fg = self.v_foreground;
        let mut min_backlogged_v = f64::INFINITY;
        for lane in self.lanes.iter_mut() {
            if lane.queue.is_empty() {
                lane.v = lane.v.max(v_fg);
            } else {
                min_backlogged_v = min_backlogged_v.min(lane.v);
            }
        }
        if self.inner.queued() == 0 && min_backlogged_v.is_finite() {
            self.v_foreground = self.v_foreground.max(min_backlogged_v);
        }
        // Lane-local times: an idle lane resumes at the lane system's
        // current virtual time (the least-served backlogged lane).
        let min_backlogged_u = self
            .lanes
            .iter()
            .filter(|l| !l.queue.is_empty())
            .map(|l| l.u)
            .fold(f64::INFINITY, f64::min);
        if min_backlogged_u.is_finite() {
            for lane in self.lanes.iter_mut() {
                if lane.queue.is_empty() {
                    lane.u = lane.u.max(min_backlogged_u);
                }
            }
        }
        // Keep the counters bounded: only the differences matter.
        let v_floor = self
            .lanes
            .iter()
            .map(|l| l.v)
            .fold(self.v_foreground, f64::min);
        self.v_foreground -= v_floor;
        let u_floor = self.lanes.iter().map(|l| l.u).fold(f64::INFINITY, f64::min);
        for lane in self.lanes.iter_mut() {
            lane.v -= v_floor;
            lane.u -= u_floor;
        }
    }

    /// The backlogged lane next in line among the lanes (least lane-local
    /// virtual time; ties go to the lower class index).
    fn candidate_lane(&self) -> Option<usize> {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.queue.is_empty())
            .min_by(|(_, a), (_, b)| a.u.total_cmp(&b.u))
            .map(|(i, _)| i)
    }

    /// Serves the front of lane `idx`, charging its lane-local time and —
    /// when `charge_foreground` — its foreground-facing time.
    fn serve_lane(&mut self, idx: usize, charge_foreground: bool) -> IoRequest {
        let lane = &mut self.lanes[idx];
        let request = lane.queue.pop_front().expect("candidate lane non-empty");
        let normalised = Self::cost(&request) / lane.rate;
        lane.u += normalised;
        if charge_foreground {
            lane.v += normalised;
        }
        request
    }
}

impl PolicyEngine for StagedEngine {
    fn name(&self) -> &'static str {
        "staged"
    }

    fn admit(&mut self, request: IoRequest) {
        match TrafficClass::of(request.meta.job) {
            Some(class) => {
                let idx = class.index() as usize;
                if let Some(t) = &self.telemetry {
                    t.lanes[idx].admitted_bytes.add(request.bytes);
                }
                self.trace_event(
                    request.arrival_ns,
                    TraceKind::Admit,
                    lane_of(class),
                    request.meta.job.0,
                    request.bytes,
                    self.lanes[idx].v,
                );
                self.lanes[idx].queue.push_back(request);
            }
            None => {
                self.trace_event(
                    request.arrival_ns,
                    TraceKind::Admit,
                    TraceLane::Foreground,
                    request.meta.job.0,
                    request.bytes,
                    0.0,
                );
                self.inner.admit(request);
            }
        }
    }

    fn select(&mut self, now_ns: u64, rng: &mut dyn RngCore) -> Option<IoRequest> {
        self.clamp_idle();
        // Level 1: the backlogged lanes elect their next-in-line. Level 2:
        // that lane competes with the foreground; ties favour the
        // foreground.
        let candidate = self.candidate_lane();
        if let Some(idx) = candidate {
            if self.lanes[idx].v < self.v_foreground {
                let request = self.serve_lane(idx, true);
                let lane = lane_of(TrafficClass::ALL[idx]);
                if let Some(t) = &self.telemetry {
                    t.lanes[idx].charged_bytes.add(request.bytes);
                }
                self.trace_event(
                    now_ns,
                    TraceKind::SelectCharged,
                    lane,
                    request.meta.job.0,
                    request.bytes,
                    self.lanes[idx].v,
                );
                return Some(request);
            }
        }
        if let Some(request) = self.inner.select(now_ns, rng) {
            self.v_foreground += Self::cost(&request);
            if let Some(t) = &self.telemetry {
                t.fg_selected_bytes.add(request.bytes);
            }
            self.trace_event(
                now_ns,
                TraceKind::SelectForeground,
                TraceLane::Foreground,
                request.meta.job.0,
                request.bytes,
                0.0,
            );
            return Some(request);
        }
        // Foreground had nothing eligible (empty, or backlogged but
        // throttled — e.g. TBF out of tokens): the lane expands into
        // capacity the foreground could not have used, charged lane-locally
        // (so drain and restore stay mutually fair) but *not* against the
        // foreground (see the module docs).
        candidate.map(|idx| {
            let request = self.serve_lane(idx, false);
            let lane = lane_of(TrafficClass::ALL[idx]);
            if let Some(t) = &self.telemetry {
                t.lanes[idx].uncharged_bytes.add(request.bytes);
            }
            self.trace_event(
                now_ns,
                TraceKind::SelectUncharged,
                lane,
                request.meta.job.0,
                request.bytes,
                self.lanes[idx].v,
            );
            request
        })
    }

    fn next_eligible_ns(&self, now_ns: u64) -> Option<u64> {
        if self.lanes.iter().any(|l| !l.queue.is_empty()) {
            // Internal-class work is always eligible as soon as a worker
            // frees up.
            return Some(now_ns);
        }
        self.inner.next_eligible_ns(now_ns)
    }

    fn complete(&mut self, completion: &Completion) {
        let class = TrafficClass::of(completion.request.meta.job);
        self.trace_event(
            completion.finish_ns,
            TraceKind::Complete,
            class.map_or(TraceLane::Foreground, lane_of),
            completion.request.meta.job.0,
            completion.request.bytes,
            class.map_or(0.0, |c| self.lanes[c.index() as usize].v),
        );
        if class.is_none() {
            self.inner.complete(completion);
        }
    }

    fn reconfigure(&mut self, table: &JobTable, policy: &Policy) {
        // Pass through untouched: the class lanes survive reconfiguration
        // just like the foreground queues (the epoch-boundary contract), and
        // the foreground:class splits are orthogonal to the foreground
        // policy.
        self.inner.reconfigure(table, policy);
    }

    fn honors_policy(&self) -> bool {
        self.inner.honors_policy()
    }

    fn queued(&self) -> usize {
        self.inner.queued() + self.lanes.iter().map(|l| l.queue.len()).sum::<usize>()
    }

    fn queued_for(&self, job: JobId) -> usize {
        match TrafficClass::of(job) {
            Some(class) => self.lanes[class.index() as usize]
                .queue
                .iter()
                .filter(|r| r.meta.job == job)
                .count(),
            None => self.inner.queued_for(job),
        }
    }

    fn backlogged_jobs(&self) -> Vec<JobId> {
        let mut jobs = self.inner.backlogged_jobs();
        for lane in &self.lanes {
            if let Some(r) = lane.queue.front() {
                jobs.push(r.meta.job);
            }
        }
        jobs
    }

    fn shares(&self) -> ShareMap {
        self.inner.shares()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{drain_meta, is_drain, restore_meta};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use themis_core::request::OpKind;
    use themis_core::sched::ThemisScheduler;

    fn staged(weight: u32) -> StagedEngine {
        StagedEngine::new(Box::new(ThemisScheduler::new(Policy::job_fair())), weight)
    }

    fn fg_meta() -> JobMeta {
        JobMeta::new(1u64, 1u32, 1u32, 4)
    }

    fn table_with_fg() -> JobTable {
        let mut t = JobTable::new();
        t.heartbeat(fg_meta(), 0);
        t
    }

    #[test]
    fn shares_come_from_weighted_level_machinery() {
        let (fg, dr) = staged_shares(8);
        assert!((fg - 8.0 / 9.0).abs() < 1e-9);
        assert!((dr - 1.0 / 9.0).abs() < 1e-9);
        let (fg, dr) = staged_shares(1);
        assert!((fg - 0.5).abs() < 1e-9);
        assert!((dr - 0.5).abs() < 1e-9);
        // Weight 0 is clamped to 1 by the constructor.
        assert_eq!(
            StagedEngine::new(Box::new(ThemisScheduler::new(Policy::job_fair())), 0).weight(),
            1
        );
        // Per-class weights surface per class.
        let e = StagedEngine::with_weights(
            Box::new(ThemisScheduler::new(Policy::job_fair())),
            ClassWeights::default()
                .enable(TrafficClass::Drain, 8)
                .enable(TrafficClass::Restore, 4),
        );
        let (fg, re) = e.class_shares_of(TrafficClass::Restore);
        assert!((fg - 0.8).abs() < 1e-9);
        assert!((re - 0.2).abs() < 1e-9);
    }

    #[test]
    fn weighted_split_under_dual_backlog() {
        // Both classes saturated with 1 MiB requests: the served byte split
        // must approach 8:1.
        let mut e = staged(8);
        e.reconfigure(&table_with_fg(), &Policy::job_fair());
        let mut seq = 0;
        for _ in 0..360 {
            e.admit(IoRequest::write(seq, fg_meta(), 1 << 20, 0));
            seq += 1;
        }
        for _ in 0..360 {
            e.admit(IoRequest::new(seq, drain_meta(0), OpKind::Read, 1 << 20, 0));
            seq += 1;
        }
        let mut rng = SmallRng::seed_from_u64(7);
        let mut fg_bytes = 0u64;
        let mut drain_bytes = 0u64;
        for _ in 0..180 {
            let r = e.select(0, &mut rng).expect("backlogged");
            if is_drain(&r.meta) {
                drain_bytes += r.bytes;
            } else {
                fg_bytes += r.bytes;
            }
        }
        let ratio = fg_bytes as f64 / drain_bytes.max(1) as f64;
        assert!((ratio - 8.0).abs() < 1.0, "fg:drain byte ratio {ratio}");
    }

    #[test]
    fn three_way_backlog_respects_every_pairwise_weight() {
        // Foreground, drain (8:1) and restore (8:1) all saturated: the
        // foreground keeps ~8/10 of the device (each class's pairwise rate
        // is 1/8 of the foreground's) and the two classes split the rest
        // evenly.
        let mut e = StagedEngine::with_weights(
            Box::new(ThemisScheduler::new(Policy::job_fair())),
            ClassWeights::uniform(8),
        );
        e.reconfigure(&table_with_fg(), &Policy::job_fair());
        let mut seq = 0;
        for _ in 0..800 {
            e.admit(IoRequest::write(seq, fg_meta(), 1 << 20, 0));
            seq += 1;
        }
        for _ in 0..200 {
            e.admit(IoRequest::new(seq, drain_meta(0), OpKind::Read, 1 << 20, 0));
            seq += 1;
            e.admit(IoRequest::new(
                seq,
                restore_meta(0),
                OpKind::Write,
                1 << 20,
                0,
            ));
            seq += 1;
        }
        let mut rng = SmallRng::seed_from_u64(11);
        let (mut fg, mut dr, mut re) = (0u64, 0u64, 0u64);
        for _ in 0..400 {
            let r = e.select(0, &mut rng).expect("backlogged");
            match TrafficClass::of(r.meta.job) {
                Some(TrafficClass::Drain) => dr += 1,
                Some(TrafficClass::Restore) => re += 1,
                Some(other) => panic!("unexpected class {other}"),
                None => fg += 1,
            }
        }
        let total = (fg + dr + re) as f64;
        assert!(
            (fg as f64 / total - 0.8).abs() < 0.04,
            "foreground fraction {} of {fg}/{dr}/{re}",
            fg as f64 / total
        );
        assert!(
            (dr as f64 - re as f64).abs() <= 2.0,
            "drain/restore imbalance: {dr} vs {re}"
        );
    }

    #[test]
    fn lanes_stay_mutually_fair_while_foreground_is_idle() {
        // No foreground at all: drain at 8:1 and restore at 4:1 expand into
        // the idle capacity and split it 1:2 (their pairwise rates are 1/8
        // and 1/4 of the foreground's).
        let mut e = StagedEngine::with_weights(
            Box::new(ThemisScheduler::new(Policy::job_fair())),
            ClassWeights::default()
                .enable(TrafficClass::Drain, 8)
                .enable(TrafficClass::Restore, 4),
        );
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seq = 0;
        for _ in 0..300 {
            e.admit(IoRequest::new(seq, drain_meta(0), OpKind::Read, 1 << 20, 0));
            seq += 1;
            e.admit(IoRequest::new(
                seq,
                restore_meta(0),
                OpKind::Write,
                1 << 20,
                0,
            ));
            seq += 1;
        }
        let (mut dr, mut re) = (0u64, 0u64);
        for _ in 0..300 {
            let r = e.select(0, &mut rng).expect("backlogged");
            match TrafficClass::of(r.meta.job) {
                Some(TrafficClass::Drain) => dr += 1,
                Some(TrafficClass::Restore) => re += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        let ratio = re as f64 / dr.max(1) as f64;
        assert!((ratio - 2.0).abs() < 0.25, "restore:drain ratio {ratio}");
    }

    #[test]
    fn drain_expands_into_idle_foreground() {
        let mut e = staged(8);
        let mut rng = SmallRng::seed_from_u64(1);
        for s in 0..10 {
            e.admit(IoRequest::new(s, drain_meta(0), OpKind::Read, 1 << 20, 0));
        }
        // No foreground work at all: every select yields drain.
        for _ in 0..10 {
            assert!(is_drain(&e.select(0, &mut rng).expect("drain queued").meta));
        }
        assert_eq!(e.queued(), 0);
    }

    #[test]
    fn idle_period_accrues_no_debt() {
        // Serve a long drain-only phase, then a foreground burst: the
        // foreground must not monopolise the device to "catch up" — the split
        // goes straight to 8:1.
        let mut e = staged(8);
        e.reconfigure(&table_with_fg(), &Policy::job_fair());
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seq = 0u64;
        for _ in 0..100 {
            e.admit(IoRequest::new(seq, drain_meta(0), OpKind::Read, 1 << 20, 0));
            seq += 1;
        }
        for _ in 0..50 {
            e.select(0, &mut rng).expect("drain backlog");
        }
        // Foreground burst arrives; both classes now backlogged.
        for _ in 0..200 {
            e.admit(IoRequest::write(seq, fg_meta(), 1 << 20, 0));
            seq += 1;
        }
        let mut fg = 0u64;
        let mut dr = 0u64;
        for _ in 0..45 {
            let r = e.select(0, &mut rng).expect("backlogged");
            if is_drain(&r.meta) {
                dr += 1;
            } else {
                fg += 1;
            }
        }
        // 45 selections at 8:1 → 40 foreground, 5 drain.
        assert!(dr >= 3, "drain starved after idle period: {dr}");
        assert!(fg >= 36, "foreground did not get its 8/9: {fg}");
    }

    #[test]
    fn telemetry_attachment_records_lane_counters_and_trace() {
        let mut e = staged(8);
        let reg = MetricsRegistry::new();
        e.attach_telemetry(&reg, 3);
        e.set_trace_epoch(2);
        e.reconfigure(&table_with_fg(), &Policy::job_fair());
        let mut rng = SmallRng::seed_from_u64(9);
        e.admit(IoRequest::write(0, fg_meta(), 4096, 10));
        e.admit(IoRequest::new(1, drain_meta(0), OpKind::Read, 8192, 20));
        // Foreground wins the first slot (tie goes to the foreground); the
        // drain lane is then behind on virtual time and served *charged*.
        let first = e.select(100, &mut rng).expect("fg queued");
        assert!(!is_drain(&first.meta));
        let second = e.select(200, &mut rng).expect("drain queued");
        assert!(is_drain(&second.meta));

        let snap = reg.snapshot(0);
        assert_eq!(snap.counter(3, 0, "foreground", "selected_bytes"), 4096);
        assert_eq!(snap.counter(3, 0, "drain", "admitted_bytes"), 8192);
        assert_eq!(snap.counter(3, 0, "drain", "selected_charged_bytes"), 8192);
        assert_eq!(snap.counter(3, 0, "drain", "selected_uncharged_bytes"), 0);

        let dump = e.trace_dump(usize::MAX);
        if DecisionTrace::enabled() {
            let kinds: Vec<&'static str> = dump.events.iter().map(|ev| ev.kind.name()).collect();
            assert_eq!(kinds, vec!["admit", "admit", "select-fg", "select-charged"]);
            assert!(dump.events.iter().all(|ev| ev.server == 3 && ev.epoch == 2));
        } else {
            assert!(dump.events.is_empty());
        }
    }

    #[test]
    fn detached_engine_records_nothing_and_downcast_reaches_it() {
        let mut boxed: Box<dyn PolicyEngine> = Box::new(staged(8));
        let mut rng = SmallRng::seed_from_u64(1);
        boxed.admit(IoRequest::new(0, drain_meta(0), OpKind::Read, 4096, 0));
        boxed.select(0, &mut rng).expect("drain queued");
        // The downcast seam the server uses to reach the concrete engine
        // through its Box<dyn PolicyEngine>.
        let staged: &mut StagedEngine = boxed
            .as_any_mut()
            .expect("staged engine exposes itself")
            .downcast_mut()
            .expect("concrete type is StagedEngine");
        assert_eq!(staged.trace_dump(usize::MAX).events.len(), 0);
        assert_eq!(staged.trace.recorded(), 0);
    }

    #[test]
    fn passthrough_preserves_engine_contract() {
        let mut e = staged(4);
        assert_eq!(e.name(), "staged");
        assert!(e.honors_policy());
        e.reconfigure(&table_with_fg(), &Policy::job_fair());
        e.admit(IoRequest::write(0, fg_meta(), 4096, 0));
        e.admit(IoRequest::new(1, drain_meta(0), OpKind::Read, 4096, 0));
        e.admit(IoRequest::new(2, restore_meta(0), OpKind::Write, 4096, 0));
        assert_eq!(e.queued(), 3);
        assert_eq!(e.queued_for(fg_meta().job), 1);
        assert_eq!(e.queued_for(drain_meta(0).job), 1);
        assert_eq!(e.queued_for(restore_meta(0).job), 1);
        assert_eq!(e.queued_class(TrafficClass::Drain), 1);
        assert_eq!(e.queued_class(TrafficClass::Restore), 1);
        assert_eq!(e.queued_class(TrafficClass::Scrub), 0);
        let backlogged = e.backlogged_jobs();
        assert!(backlogged.contains(&fg_meta().job));
        assert!(backlogged.contains(&drain_meta(0).job));
        assert!(backlogged.contains(&restore_meta(0).job));
        // Reconfigure (a live SetPolicy) leaves every queue intact.
        e.reconfigure(&table_with_fg(), &Policy::size_fair());
        assert_eq!(e.queued(), 3);
        assert!((e.shares().share(fg_meta().job) - 1.0).abs() < 1e-9);
    }
}
