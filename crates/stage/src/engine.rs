//! [`StagedEngine`]: a policy-engine decorator that arbitrates foreground
//! traffic against synthesized drain traffic.
//!
//! The server holds one `Box<dyn PolicyEngine>`; when staging is enabled that
//! box *is* a `StagedEngine` wrapping the configured foreground engine
//! (ThemisIO statistical tokens, FIFO, GIFT, TBF — anything). Drain requests
//! (identified by [`is_drain`]) are queued FIFO inside the decorator; all
//! other calls pass through, so live `SetPolicy` swaps, share telemetry and
//! the epoch-boundary contract are untouched.
//!
//! # The foreground:drain weight
//!
//! The split is start-time weighted fair queuing over two classes. The class
//! weights are not ad-hoc numbers: they are derived through the policy
//! crate's own [`WeightedLevel`] machinery by evaluating a one-tier
//! `job[w]-fair` policy over two pseudo-jobs (foreground = the premium
//! tenant, drain = its peer) with [`compute_shares`]. A weight of 8 therefore
//! yields shares 8/9 : 1/9, exactly the semantics `user[8]-…` has for premium
//! users — the paper's single-parameter policy language, extended to
//! stage-out.
//!
//! When one class has nothing eligible the other expands into the idle
//! capacity and the idle class's virtual time is clamped forward, so neither
//! side accumulates credit or debt across idle periods (opportunity
//! fairness, §3 of the paper, applied to the drain dimension).

use crate::pipeline::is_drain;
use rand::RngCore;
use std::collections::VecDeque;
use themis_core::engine::PolicyEngine;
use themis_core::entity::{JobId, JobMeta};
use themis_core::job_table::JobTable;
use themis_core::policy::{Level, Policy, PolicySpec, WeightedLevel};
use themis_core::request::{Completion, IoRequest};
use themis_core::shares::{compute_shares, ShareMap};

/// Derives the (foreground, drain) share split for `weight` via the policy
/// crate's weighted-tier machinery (see the [module docs](self)).
fn staged_shares(weight: u32) -> (f64, f64) {
    let spec = PolicySpec::new([WeightedLevel::weighted(Level::Job, weight.max(1))])
        .expect("a single weighted job tier is always a valid policy");
    let policy = Policy::Fair(spec);
    // Two pseudo-jobs: the premium tenant (lowest job id) is the foreground
    // class, its peer is the drain class.
    let foreground = JobMeta::new(0u64, 0u32, 0u32, 1);
    let drain = JobMeta::new(1u64, 1u32, 1u32, 1);
    let shares = compute_shares(&policy, &[foreground, drain]);
    (shares.share(JobId(0)), shares.share(JobId(1)))
}

/// A [`PolicyEngine`] decorator that schedules drain traffic alongside the
/// wrapped foreground engine at a configurable foreground:drain weight.
pub struct StagedEngine {
    inner: Box<dyn PolicyEngine>,
    drain: VecDeque<IoRequest>,
    weight: u32,
    foreground_share: f64,
    drain_share: f64,
    /// Normalised virtual service (bytes / share) of each class.
    v_foreground: f64,
    v_drain: f64,
}

impl StagedEngine {
    /// Wraps `inner` with a foreground:drain weight of `weight`:1.
    pub fn new(inner: Box<dyn PolicyEngine>, weight: u32) -> Self {
        let weight = weight.max(1);
        let (foreground_share, drain_share) = staged_shares(weight);
        StagedEngine {
            inner,
            drain: VecDeque::new(),
            weight,
            foreground_share,
            drain_share,
            v_foreground: 0.0,
            v_drain: 0.0,
        }
    }

    /// The configured foreground:drain weight.
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// The nominal (foreground, drain) share split.
    pub fn class_shares(&self) -> (f64, f64) {
        (self.foreground_share, self.drain_share)
    }

    /// Number of queued drain requests.
    pub fn drain_queued(&self) -> usize {
        self.drain.len()
    }

    /// The virtual cost of serving a request: its payload, with metadata
    /// operations charged a nominal byte so they are not free.
    fn cost(request: &IoRequest) -> f64 {
        request.bytes.max(1) as f64
    }

    /// Clamps the virtual time of an idle class forward so idle periods
    /// accumulate neither credit nor debt.
    fn clamp_idle(&mut self) {
        if self.drain.is_empty() {
            self.v_drain = self.v_drain.max(self.v_foreground);
        }
        if self.inner.queued() == 0 {
            self.v_foreground = self.v_foreground.max(self.v_drain);
        }
        // Keep the counters bounded: only the difference matters.
        let floor = self.v_foreground.min(self.v_drain);
        self.v_foreground -= floor;
        self.v_drain -= floor;
    }
}

impl PolicyEngine for StagedEngine {
    fn name(&self) -> &'static str {
        "staged"
    }

    fn admit(&mut self, request: IoRequest) {
        if is_drain(&request.meta) {
            self.drain.push_back(request);
        } else {
            self.inner.admit(request);
        }
    }

    fn select(&mut self, now_ns: u64, rng: &mut dyn RngCore) -> Option<IoRequest> {
        self.clamp_idle();
        // Serve the class with the smaller normalised virtual service; ties
        // favour the foreground.
        let prefer_drain = !self.drain.is_empty() && self.v_drain < self.v_foreground;
        if prefer_drain {
            let request = self.drain.pop_front().expect("checked non-empty");
            self.v_drain += Self::cost(&request) / self.drain_share;
            return Some(request);
        }
        if let Some(request) = self.inner.select(now_ns, rng) {
            self.v_foreground += Self::cost(&request) / self.foreground_share;
            return Some(request);
        }
        // Foreground had nothing eligible (empty, or backlogged but
        // throttled — e.g. TBF out of tokens): drain expands into capacity
        // the foreground could not have used, *uncharged*. Charging it
        // would bank drain debt across the throttled window and starve the
        // drain once the foreground becomes eligible again.
        self.drain.pop_front()
    }

    fn next_eligible_ns(&self, now_ns: u64) -> Option<u64> {
        if !self.drain.is_empty() {
            // Drain work is always eligible as soon as a worker frees up.
            return Some(now_ns);
        }
        self.inner.next_eligible_ns(now_ns)
    }

    fn complete(&mut self, completion: &Completion) {
        if !is_drain(&completion.request.meta) {
            self.inner.complete(completion);
        }
    }

    fn reconfigure(&mut self, table: &JobTable, policy: &Policy) {
        // Pass through untouched: the drain queue survives reconfiguration
        // just like the foreground queues (the epoch-boundary contract), and
        // the foreground:drain split is orthogonal to the foreground policy.
        self.inner.reconfigure(table, policy);
    }

    fn honors_policy(&self) -> bool {
        self.inner.honors_policy()
    }

    fn queued(&self) -> usize {
        self.inner.queued() + self.drain.len()
    }

    fn queued_for(&self, job: JobId) -> usize {
        if job.is_reserved() {
            self.drain.iter().filter(|r| r.meta.job == job).count()
        } else {
            self.inner.queued_for(job)
        }
    }

    fn backlogged_jobs(&self) -> Vec<JobId> {
        let mut jobs = self.inner.backlogged_jobs();
        if let Some(r) = self.drain.front() {
            jobs.push(r.meta.job);
        }
        jobs
    }

    fn shares(&self) -> ShareMap {
        self.inner.shares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::drain_meta;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use themis_core::request::OpKind;
    use themis_core::sched::ThemisScheduler;

    fn staged(weight: u32) -> StagedEngine {
        StagedEngine::new(Box::new(ThemisScheduler::new(Policy::job_fair())), weight)
    }

    fn fg_meta() -> JobMeta {
        JobMeta::new(1u64, 1u32, 1u32, 4)
    }

    fn table_with_fg() -> JobTable {
        let mut t = JobTable::new();
        t.heartbeat(fg_meta(), 0);
        t
    }

    #[test]
    fn shares_come_from_weighted_level_machinery() {
        let (fg, dr) = staged_shares(8);
        assert!((fg - 8.0 / 9.0).abs() < 1e-9);
        assert!((dr - 1.0 / 9.0).abs() < 1e-9);
        let (fg, dr) = staged_shares(1);
        assert!((fg - 0.5).abs() < 1e-9);
        assert!((dr - 0.5).abs() < 1e-9);
        // Weight 0 is clamped to 1 by the constructor.
        assert_eq!(
            StagedEngine::new(Box::new(ThemisScheduler::new(Policy::job_fair())), 0).weight(),
            1
        );
    }

    #[test]
    fn weighted_split_under_dual_backlog() {
        // Both classes saturated with 1 MiB requests: the served byte split
        // must approach 8:1.
        let mut e = staged(8);
        e.reconfigure(&table_with_fg(), &Policy::job_fair());
        let mut seq = 0;
        for _ in 0..360 {
            e.admit(IoRequest::write(seq, fg_meta(), 1 << 20, 0));
            seq += 1;
        }
        for _ in 0..360 {
            e.admit(IoRequest::new(seq, drain_meta(0), OpKind::Read, 1 << 20, 0));
            seq += 1;
        }
        let mut rng = SmallRng::seed_from_u64(7);
        let mut fg_bytes = 0u64;
        let mut drain_bytes = 0u64;
        for _ in 0..180 {
            let r = e.select(0, &mut rng).expect("backlogged");
            if is_drain(&r.meta) {
                drain_bytes += r.bytes;
            } else {
                fg_bytes += r.bytes;
            }
        }
        let ratio = fg_bytes as f64 / drain_bytes.max(1) as f64;
        assert!((ratio - 8.0).abs() < 1.0, "fg:drain byte ratio {ratio}");
    }

    #[test]
    fn drain_expands_into_idle_foreground() {
        let mut e = staged(8);
        let mut rng = SmallRng::seed_from_u64(1);
        for s in 0..10 {
            e.admit(IoRequest::new(s, drain_meta(0), OpKind::Read, 1 << 20, 0));
        }
        // No foreground work at all: every select yields drain.
        for _ in 0..10 {
            assert!(is_drain(&e.select(0, &mut rng).expect("drain queued").meta));
        }
        assert_eq!(e.queued(), 0);
    }

    #[test]
    fn idle_period_accrues_no_debt() {
        // Serve a long drain-only phase, then a foreground burst: the
        // foreground must not monopolise the device to "catch up" — the split
        // goes straight to 8:1.
        let mut e = staged(8);
        e.reconfigure(&table_with_fg(), &Policy::job_fair());
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seq = 0u64;
        for _ in 0..100 {
            e.admit(IoRequest::new(seq, drain_meta(0), OpKind::Read, 1 << 20, 0));
            seq += 1;
        }
        for _ in 0..50 {
            e.select(0, &mut rng).expect("drain backlog");
        }
        // Foreground burst arrives; both classes now backlogged.
        for _ in 0..200 {
            e.admit(IoRequest::write(seq, fg_meta(), 1 << 20, 0));
            seq += 1;
        }
        let mut fg = 0u64;
        let mut dr = 0u64;
        for _ in 0..45 {
            let r = e.select(0, &mut rng).expect("backlogged");
            if is_drain(&r.meta) {
                dr += 1;
            } else {
                fg += 1;
            }
        }
        // 45 selections at 8:1 → 40 foreground, 5 drain.
        assert!(dr >= 3, "drain starved after idle period: {dr}");
        assert!(fg >= 36, "foreground did not get its 8/9: {fg}");
    }

    #[test]
    fn passthrough_preserves_engine_contract() {
        let mut e = staged(4);
        assert_eq!(e.name(), "staged");
        assert!(e.honors_policy());
        e.reconfigure(&table_with_fg(), &Policy::job_fair());
        e.admit(IoRequest::write(0, fg_meta(), 4096, 0));
        e.admit(IoRequest::new(1, drain_meta(0), OpKind::Read, 4096, 0));
        assert_eq!(e.queued(), 2);
        assert_eq!(e.queued_for(fg_meta().job), 1);
        assert_eq!(e.queued_for(drain_meta(0).job), 1);
        let backlogged = e.backlogged_jobs();
        assert!(backlogged.contains(&fg_meta().job));
        assert!(backlogged.contains(&drain_meta(0).job));
        // Reconfigure (a live SetPolicy) leaves both queues intact.
        e.reconfigure(&table_with_fg(), &Policy::size_fair());
        assert_eq!(e.queued(), 2);
        assert!((e.shares().share(fg_meta().job) - 1.0).abs() < 1e-9);
    }
}
