//! The per-server durability replication pipeline: the bookkeeping of the
//! replica *debt* acknowledged writes create and the synthesis of the
//! policy-visible copy traffic that pays it down.
//!
//! Durability classes split a write's lifecycle from its guarantee: the
//! burst buffer acks against local NVMe, and writes whose
//! [`DurabilityMode`] owes a replica are copied to the replica tier
//! *asynchronously*, as ordinary [`IoRequest`]s under the
//! [`TrafficClass::Replicate`] identity. The pipeline does not move bytes itself — the server core (or
//! the simulator) reads the extent, verifies it (through the
//! `verified_read_back` seam when the source is no longer burst-resident;
//! unverifiable bytes are **never** replicated), charges the devices, and
//! writes the replica. The pipeline's job is to make the debt
//! *policy-visible and observable*:
//!
//! * every queued byte of replica debt is surfaced as replication **lag**
//!   (`requested - completed`, saturating — the satellite-1 audit rule for
//!   independently-maintained totals);
//! * each copy is admitted through the staged engine's replicate lane, so
//!   the bandwidth replication steals from foreground is bounded by
//!   [`ClassWeights`](crate::class::ClassWeights)' replicate weight exactly
//!   like drain/restore/scrub/rebalance;
//! * `sync` writes park their acks on the pipeline
//!   ([`ReplicatePipeline::record_sync_deferred`]) until the replica lands,
//!   so a client never observes a success the replica tier could still
//!   lose.

use crate::class::TrafficClass;
use crate::pipeline::replicate_meta;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use themis_core::durability::DurabilityMode;
use themis_core::entity::JobMeta;
use themis_core::request::{IoRequest, OpKind};
use themis_telemetry::{Counter, MetricsRegistry, SeriesKey};

/// One extent owing a replica: where the copy comes from and what debt it
/// retires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaTarget {
    /// Path of the file the extent belongs to.
    pub path: String,
    /// Stripe index of the extent.
    pub stripe: u64,
    /// Extent length at enqueue time (the admitted cost on the burst
    /// device; the copy itself reads the extent's *current* bytes, so a
    /// grown extent still replicates whole).
    pub bytes: u64,
    /// The durability mode that created the debt. `Sync` targets carry
    /// deferred acks the server releases on completion.
    pub mode: DurabilityMode,
}

impl ReplicaTarget {
    /// The `(path, stripe)` key replication work deduplicates on.
    pub fn key(&self) -> (String, u64) {
        (self.path.clone(), self.stripe)
    }
}

/// A point-in-time snapshot of one server's replication state, reported
/// through the `ReplicateStatus` control-plane message.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicateStatus {
    /// Whether a durability spec gave the pipeline work to do.
    pub enabled: bool,
    /// Extents queued for replication (debt not yet admitted).
    pub queued_extents: u64,
    /// Copies currently in flight.
    pub inflight: u64,
    /// Total bytes of replica debt enqueued since boot.
    pub requested_bytes: u64,
    /// Total bytes of replica debt retired since boot (at the admitted
    /// cost, success or failure — the unit matching `requested_bytes`).
    pub completed_bytes: u64,
    /// Replication lag: debt enqueued but not yet retired. Derived
    /// `requested - completed` saturating — independently-maintained totals
    /// saturate instead of trusting update order (the satellite-1 audit
    /// rule).
    pub lag_bytes: u64,
    /// Total bytes actually landed on the replica tier since boot.
    pub replicated_bytes: u64,
    /// Total extents replicated since boot.
    pub replicated_extents: u64,
    /// Copies abandoned because the source bytes could not be verified —
    /// unverifiable data is never replicated (the PR 5 seam rule).
    pub failed_replications: u64,
    /// `sync` write acks deferred until their replica lands.
    pub sync_acks_deferred: u64,
    /// Deferred `sync` acks released by a landed replica.
    pub sync_acks_released: u64,
}

impl ReplicateStatus {
    /// Whether the pipeline is fully caught up: no lag, nothing in flight,
    /// and no `sync` ack still parked.
    pub fn is_idle(&self) -> bool {
        self.lag_bytes == 0
            && self.inflight == 0
            && self.sync_acks_deferred == self.sync_acks_released
    }
}

/// Pre-resolved registry handles mirroring [`ReplicatePipeline`]'s
/// cumulative counters (attached by the server so `ReplicateStatus` can be
/// built as a view over one registry snapshot).
///
/// The lag is **derived**, not stored: `replicate_completed_bytes` sorts
/// before `replicate_requested_bytes`, so a registry snapshot reads the
/// follower first and `requested - completed` is non-negative in any
/// snapshot (the follower-sorts-first naming convention, see
/// `MetricsRegistry::snapshot`).
#[derive(Debug)]
struct ReplicateStats {
    requested_bytes: Counter,
    completed_bytes: Counter,
    replicated_bytes: Counter,
    replicated_extents: Counter,
    failed_replications: Counter,
    sync_acks_deferred: Counter,
    sync_acks_released: Counter,
}

/// Per-server replication bookkeeping: the queue of extents owing a
/// replica, the copies in flight, and cumulative replication counters.
#[derive(Debug)]
pub struct ReplicatePipeline {
    server: usize,
    enabled: bool,
    max_inflight: usize,
    queue: VecDeque<ReplicaTarget>,
    /// Keys queued or in flight, for deduplication: a re-dirtied extent
    /// already owing a replica owes exactly one copy (the copy reads the
    /// latest bytes at execution time).
    pending_keys: HashSet<(String, u64)>,
    inflight: HashMap<u64, ReplicaTarget>,
    queued_bytes: u64,
    inflight_bytes: u64,
    requested_bytes: u64,
    completed_bytes: u64,
    replicated_bytes: u64,
    replicated_extents: u64,
    failed_replications: u64,
    sync_acks_deferred: u64,
    sync_acks_released: u64,
    stats: Option<ReplicateStats>,
}

impl ReplicatePipeline {
    /// Creates the replication pipeline of `server`, admitting at most
    /// `max_inflight` copies at a time. A disabled pipeline accepts no
    /// debt — the server constructs it disabled when no durability spec
    /// demands replicas.
    pub fn new(server: usize, enabled: bool, max_inflight: usize) -> Self {
        ReplicatePipeline {
            server,
            enabled,
            max_inflight: max_inflight.max(1),
            queue: VecDeque::new(),
            pending_keys: HashSet::new(),
            inflight: HashMap::new(),
            queued_bytes: 0,
            inflight_bytes: 0,
            requested_bytes: 0,
            completed_bytes: 0,
            replicated_bytes: 0,
            replicated_extents: 0,
            failed_replications: 0,
            sync_acks_deferred: 0,
            sync_acks_released: 0,
            stats: None,
        }
    }

    /// Resolves registry handles for the pipeline's cumulative counters
    /// (lane `"replicate"` on this pipeline's server) so every subsequent
    /// mutation is mirrored into `registry` — see
    /// `DrainPipeline::attach_telemetry`. Call before any traffic flows;
    /// counts recorded while detached are not back-filled.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        let key = SeriesKey::class(self.server, TrafficClass::Replicate.name());
        self.stats = Some(ReplicateStats {
            requested_bytes: registry.counter(key, "replicate_requested_bytes"),
            completed_bytes: registry.counter(key, "replicate_completed_bytes"),
            replicated_bytes: registry.counter(key, "replicate_replicated_bytes"),
            replicated_extents: registry.counter(key, "replicated_extents"),
            failed_replications: registry.counter(key, "failed_replications"),
            sync_acks_deferred: registry.counter(key, "sync_acks_deferred"),
            sync_acks_released: registry.counter(key, "sync_acks_released"),
        });
    }

    /// The replicate job identity of this server.
    pub fn meta(&self) -> JobMeta {
        replicate_meta(self.server)
    }

    /// Whether a durability spec gave this pipeline work to do.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records the replica debt of one acknowledged write. Returns whether
    /// new debt was queued: `local_only` writes owe nothing, a disabled
    /// pipeline takes nothing, and an extent already owing a copy owes
    /// exactly one (the copy reads the latest bytes when it executes).
    pub fn note_write(
        &mut self,
        path: impl Into<String>,
        stripe: u64,
        bytes: u64,
        mode: DurabilityMode,
    ) -> bool {
        if !self.enabled || !mode.replicates() {
            return false;
        }
        let path = path.into();
        let key = (path.clone(), stripe);
        if self.pending_keys.contains(&key) {
            // One pending copy suffices, but a sync write behind it must
            // still defer its ack on the *pending* copy — upgrade the mode
            // so status reporting reflects the strongest waiter.
            if mode.defers_ack() {
                for queued in self.queue.iter_mut() {
                    if queued.key() == key {
                        queued.mode = DurabilityMode::Sync;
                    }
                }
                for inflight in self.inflight.values_mut() {
                    if inflight.key() == key {
                        inflight.mode = DurabilityMode::Sync;
                    }
                }
            }
            return false;
        }
        let bytes = bytes.max(1);
        self.pending_keys.insert(key);
        self.queued_bytes += bytes;
        self.requested_bytes += bytes;
        if let Some(s) = &self.stats {
            s.requested_bytes.add(bytes);
        }
        self.queue.push_back(ReplicaTarget {
            path,
            stripe,
            bytes,
            mode,
        });
        true
    }

    /// Admits the next queued copy under sequence number `seq`, returning
    /// the [`IoRequest`] to feed to the policy engine — a *read* of the
    /// burst-buffer device (the copy's cost on the contended resource);
    /// the matching replica-tier write is charged by the caller when the
    /// engine releases the request. `None` when the queue is empty or the
    /// pipelining depth is reached.
    pub fn admit_next(&mut self, seq: u64, now_ns: u64) -> Option<IoRequest> {
        if self.inflight.len() >= self.max_inflight {
            return None;
        }
        let target = self.queue.pop_front()?;
        let bytes = target.bytes;
        self.queued_bytes -= bytes;
        self.inflight_bytes += bytes;
        let request = IoRequest::new(seq, self.meta(), OpKind::Read, bytes, now_ns);
        self.inflight.insert(seq, target);
        Some(request)
    }

    /// Looks up an in-flight copy by request sequence number.
    pub fn inflight(&self, seq: u64) -> Option<&ReplicaTarget> {
        self.inflight.get(&seq)
    }

    /// Completes a copy: removes it from the in-flight set, retires its
    /// debt at the admitted cost, and returns the target so the caller can
    /// account the outcome ([`record_replicated`](Self::record_replicated)
    /// or [`record_failed`](Self::record_failed)) and release any deferred
    /// `sync` acks.
    pub fn complete(&mut self, seq: u64) -> Option<ReplicaTarget> {
        let target = self.inflight.remove(&seq)?;
        self.pending_keys.remove(&target.key());
        self.inflight_bytes -= target.bytes;
        self.completed_bytes += target.bytes;
        if let Some(s) = &self.stats {
            s.completed_bytes.add(target.bytes);
        }
        Some(target)
    }

    /// Accounts one replica landed on the replica tier (`bytes` is the
    /// copy's true length).
    pub fn record_replicated(&mut self, bytes: u64) {
        self.replicated_bytes += bytes;
        self.replicated_extents += 1;
        if let Some(s) = &self.stats {
            s.replicated_bytes.add(bytes);
            s.replicated_extents.inc();
        }
    }

    /// Accounts a copy abandoned because its source bytes could not be
    /// verified (or no longer exist) — the debt is retired without a
    /// replica, and the failure is visible rather than laundered.
    pub fn record_failed(&mut self) {
        self.failed_replications += 1;
        if let Some(s) = &self.stats {
            s.failed_replications.inc();
        }
    }

    /// Accounts a `sync` write ack parked until its replica lands.
    pub fn record_sync_deferred(&mut self) {
        self.sync_acks_deferred += 1;
        if let Some(s) = &self.stats {
            s.sync_acks_deferred.inc();
        }
    }

    /// Accounts a parked `sync` ack released by a landed replica.
    pub fn record_sync_released(&mut self) {
        self.sync_acks_released += 1;
        if let Some(s) = &self.stats {
            s.sync_acks_released.inc();
        }
    }

    /// Bytes of replica debt not yet retired (queued plus in flight) — the
    /// live replication lag.
    pub fn lag_bytes(&self) -> u64 {
        self.queued_bytes + self.inflight_bytes
    }

    /// Whether any replication work is queued or in flight.
    pub fn is_busy(&self) -> bool {
        !self.queue.is_empty() || !self.inflight.is_empty()
    }

    /// Builds the status snapshot.
    pub fn status(&self) -> ReplicateStatus {
        ReplicateStatus {
            enabled: self.enabled,
            queued_extents: self.queue.len() as u64,
            inflight: self.inflight.len() as u64,
            requested_bytes: self.requested_bytes,
            completed_bytes: self.completed_bytes,
            // Independently-maintained totals: saturate instead of trusting
            // update order (the satellite-1 audit rule).
            lag_bytes: self.requested_bytes.saturating_sub(self.completed_bytes),
            replicated_bytes: self.replicated_bytes,
            replicated_extents: self.replicated_extents,
            failed_replications: self.failed_replications,
            sync_acks_deferred: self.sync_acks_deferred,
            sync_acks_released: self.sync_acks_released,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::is_replicate;

    #[test]
    fn local_only_and_disabled_pipelines_take_no_debt() {
        let mut off = ReplicatePipeline::new(0, false, 4);
        assert!(!off.note_write("/f", 0, 1 << 20, DurabilityMode::Sync));
        assert!(!off.is_busy());
        let mut on = ReplicatePipeline::new(0, true, 4);
        assert!(!on.note_write("/f", 0, 1 << 20, DurabilityMode::LocalOnly));
        assert!(!on.is_busy());
        assert!(on.note_write("/f", 0, 1 << 20, DurabilityMode::LocalPlusOne));
        assert!(on.is_busy());
        assert_eq!(on.lag_bytes(), 1 << 20);
    }

    #[test]
    fn dedup_keeps_one_copy_and_upgrades_to_sync() {
        let mut p = ReplicatePipeline::new(1, true, 4);
        assert!(p.note_write("/f", 0, 1 << 20, DurabilityMode::LocalPlusOne));
        // The re-dirtied extent owes exactly one copy…
        assert!(!p.note_write("/f", 0, 1 << 20, DurabilityMode::LocalPlusOne));
        // …and a sync writer behind it upgrades the pending copy's mode.
        assert!(!p.note_write("/f", 0, 1 << 20, DurabilityMode::Sync));
        assert_eq!(p.lag_bytes(), 1 << 20);
        let r = p.admit_next(10, 0).expect("admit");
        assert!(is_replicate(&r.meta));
        assert_eq!(r.kind, OpKind::Read);
        assert_eq!(p.inflight(10).unwrap().mode, DurabilityMode::Sync);
    }

    #[test]
    fn depth_limits_inflight_and_completion_retires_debt() {
        let mut p = ReplicatePipeline::new(0, true, 2);
        for stripe in 0..3u64 {
            assert!(p.note_write("/ckpt", stripe, 1 << 20, DurabilityMode::LocalPlusOne));
        }
        assert!(p.admit_next(1, 0).is_some());
        assert!(p.admit_next(2, 0).is_some());
        assert!(p.admit_next(3, 0).is_none(), "depth 2 reached");
        assert_eq!(p.lag_bytes(), 3 << 20);
        let done = p.complete(1).expect("complete");
        assert_eq!(done.path, "/ckpt");
        p.record_replicated(done.bytes);
        assert_eq!(p.lag_bytes(), 2 << 20);
        // The retired key may be re-dirtied into new debt.
        assert!(p.note_write("/ckpt", done.stripe, 1 << 20, DurabilityMode::LocalPlusOne));
        // Depth freed: admission resumes.
        assert!(p.admit_next(3, 0).is_some());
        let s = p.status();
        assert_eq!(s.requested_bytes, 4 << 20);
        assert_eq!(s.completed_bytes, 1 << 20);
        assert_eq!(s.lag_bytes, 3 << 20);
        assert_eq!(s.replicated_extents, 1);
        assert!(!s.is_idle());
    }

    #[test]
    fn failed_copies_retire_debt_without_replicas() {
        let mut p = ReplicatePipeline::new(0, true, 4);
        p.note_write("/gone", 0, 1 << 20, DurabilityMode::LocalPlusOne);
        p.admit_next(1, 0).unwrap();
        p.complete(1).unwrap();
        p.record_failed();
        let s = p.status();
        assert_eq!(s.lag_bytes, 0);
        assert_eq!(s.replicated_bytes, 0);
        assert_eq!(s.failed_replications, 1);
        assert!(s.is_idle());
    }

    #[test]
    fn sync_ack_parking_blocks_idle_until_released() {
        let mut p = ReplicatePipeline::new(0, true, 4);
        p.note_write("/db", 0, 4096, DurabilityMode::Sync);
        p.record_sync_deferred();
        p.admit_next(1, 0).unwrap();
        let done = p.complete(1).unwrap();
        assert!(done.mode.defers_ack());
        p.record_replicated(4096);
        assert!(!p.status().is_idle(), "parked ack still outstanding");
        p.record_sync_released();
        let s = p.status();
        assert_eq!(s.sync_acks_deferred, 1);
        assert_eq!(s.sync_acks_released, 1);
        assert!(s.is_idle());
    }

    #[test]
    fn telemetry_mirrors_every_counter() {
        let registry = MetricsRegistry::new();
        let mut p = ReplicatePipeline::new(0, true, 4);
        p.attach_telemetry(&registry);
        p.note_write("/f", 0, 1000, DurabilityMode::Sync);
        p.record_sync_deferred();
        p.admit_next(1, 0).unwrap();
        p.complete(1).unwrap();
        p.record_replicated(1000);
        p.record_sync_released();
        p.note_write("/f", 1, 500, DurabilityMode::LocalPlusOne);
        p.admit_next(2, 0).unwrap();
        p.complete(2).unwrap();
        p.record_failed();
        let snap = registry.snapshot(0);
        let c = |name: &str| snap.counter(0, 0, "replicate", name);
        assert_eq!(c("replicate_requested_bytes"), 1500);
        assert_eq!(c("replicate_completed_bytes"), 1500);
        assert_eq!(c("replicate_replicated_bytes"), 1000);
        assert_eq!(c("replicated_extents"), 1);
        assert_eq!(c("failed_replications"), 1);
        assert_eq!(c("sync_acks_deferred"), 1);
        assert_eq!(c("sync_acks_released"), 1);
        // The registry view and the pipeline's own status agree.
        let s = p.status();
        assert_eq!(s.requested_bytes, 1500);
        assert_eq!(s.completed_bytes, 1500);
        assert_eq!(s.lag_bytes, 0);
    }
}
