//! The sharded, replicated capacity tier: a [`BackingStore`] *router* over
//! N child stores.
//!
//! Production burst buffers aggregate many heterogeneous backends rather
//! than one uniform tier. The router places every extent by the hash byte
//! of its `(path, stripe)` key into a [`ShardMap`] of byte ranges
//! (`"00-7f=0,80-ff=1"` assigns the lower half of the hash space to child
//! 0, the upper half to child 1) and replicates it onto `k` distinct
//! children (the range owner plus the next active children in index
//! order, wrapped with the same [`ring_slot`] helper the file-system
//! stripe map uses — one placement modulo, one truncation fix).
//!
//! Reads go through the **verified seam**: every replica is checked
//! against its write-back checksum, the first healthy copy wins, and any
//! replica that was missing or corrupt is repaired from the healthy copy
//! on the spot (*read-repair*). When every replica is corrupt the corrupt
//! pair is returned unlaundered, so [`verified_read_back`] still reports a
//! miss and the scrub pass quarantines the extent instead of serving it.
//!
//! The shard map is *live*: backends can be added, retired (removed from
//! the map while their extents still serve reads) and ranges re-assigned
//! via [`ShardedStore::install_map`], which bumps a generation counter.
//! The [`RebalancePipeline`](crate::rebalance::RebalancePipeline) watches
//! that generation and migrates every misplaced extent — checksum-verified,
//! policy-arbitrated under [`TrafficClass::Rebalance`](crate::TrafficClass)
//! — until the tier is back to `k` replicas on exactly the desired
//! children.
//!
//! Lock discipline: the router clones the child `Arc`s out of its map lock
//! before touching any child tier, so no shim lock is ever held while a
//! child's lock is taken — the lock-order manifest stays empty and the
//! lockdep checker stays silent (see `crates/lint/lock_order.txt`).

use crate::backing::{extent_checksum, verified_read_back, BackingStore, CapacityTier};
use parking_lot::RwLock;
use std::sync::Arc;
use themis_device::{DeviceConfig, DeviceModel};
use themis_fs::layout::ring_slot;
use themis_telemetry::{Counter, Gauge, MetricsRegistry, SeriesKey};

/// Hash byte of one extent key — the coordinate the [`ShardMap`] ranges
/// partition. FNV-1a over the path bytes with the stripe number folded in,
/// reduced to the low byte; deterministic across runs and targets.
pub fn shard_byte(path: &str, stripe: u64) -> u8 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in path.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    for byte in stripe.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    // xor-fold so every input bit reaches the final byte.
    let folded = hash ^ (hash >> 32);
    (folded ^ (folded >> 16) ^ (folded >> 8)) as u8
}

/// One contiguous hash-byte range assigned to a child store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First hash byte of the range (inclusive).
    pub lo: u8,
    /// Last hash byte of the range (inclusive).
    pub hi: u8,
    /// Index of the child store owning the range.
    pub child: usize,
}

/// A full partition of the hash-byte space `00..=ff` into child-owned
/// ranges — the `"00-7f=0,80-ff=1"` assignment idiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    ranges: Vec<ShardRange>,
}

impl ShardMap {
    /// Parses the textual range-map syntax: comma-separated
    /// `lo-hi=child` entries with two-digit hex bounds, e.g.
    /// `"00-7f=0,80-ff=1"`. The entries must partition `00..=ff` exactly —
    /// full coverage, no overlap — or parsing fails with a description.
    pub fn parse(text: &str) -> Result<ShardMap, String> {
        let mut ranges = Vec::new();
        for entry in text.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (span, child) = entry
                .split_once('=')
                .ok_or_else(|| format!("'{entry}': expected lo-hi=child"))?;
            let (lo, hi) = span
                .split_once('-')
                .ok_or_else(|| format!("'{entry}': expected a lo-hi hash-byte span"))?;
            let lo = u8::from_str_radix(lo.trim(), 16)
                .map_err(|_| format!("'{entry}': bad hex bound '{lo}'"))?;
            let hi = u8::from_str_radix(hi.trim(), 16)
                .map_err(|_| format!("'{entry}': bad hex bound '{hi}'"))?;
            let child: usize = child
                .trim()
                .parse()
                .map_err(|_| format!("'{entry}': bad child index '{child}'"))?;
            if lo > hi {
                return Err(format!("'{entry}': empty range ({lo:02x} > {hi:02x})"));
            }
            ranges.push(ShardRange { lo, hi, child });
        }
        ShardMap::from_ranges(ranges)
    }

    /// Builds a map from explicit ranges, validating the partition.
    pub fn from_ranges(mut ranges: Vec<ShardRange>) -> Result<ShardMap, String> {
        if ranges.is_empty() {
            return Err("a shard map needs at least one range".into());
        }
        ranges.sort_by_key(|r| r.lo);
        let mut expect = 0u16;
        for r in &ranges {
            if u16::from(r.lo) != expect {
                return Err(format!(
                    "hash bytes {expect:02x}-{:02x} are unassigned or doubly assigned",
                    r.lo.wrapping_sub(1)
                ));
            }
            expect = u16::from(r.hi) + 1;
        }
        if expect != 256 {
            return Err(format!("hash bytes {:02x}-ff are unassigned", expect));
        }
        Ok(ShardMap { ranges })
    }

    /// An even split of the hash space over children `0..n` (the last child
    /// absorbs the remainder).
    pub fn uniform(n: usize) -> ShardMap {
        let n = n.clamp(1, 256);
        let width = 256 / n;
        let ranges = (0..n)
            .map(|child| ShardRange {
                lo: (child * width) as u8,
                hi: if child == n - 1 {
                    0xff
                } else {
                    ((child + 1) * width - 1) as u8
                },
                child,
            })
            .collect();
        ShardMap { ranges }
    }

    /// Renders the map back to the `lo-hi=child` syntax it parses from.
    pub fn to_text(&self) -> String {
        self.ranges
            .iter()
            .map(|r| format!("{:02x}-{:02x}={}", r.lo, r.hi, r.child))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The ranges, sorted by lower bound.
    pub fn ranges(&self) -> &[ShardRange] {
        &self.ranges
    }

    /// The child owning hash byte `b`.
    pub fn owner_of(&self, b: u8) -> usize {
        self.ranges
            .iter()
            .find(|r| r.lo <= b && b <= r.hi)
            .map(|r| r.child)
            .expect("a validated map covers every hash byte")
    }

    /// The distinct child indices the map assigns at least one range to
    /// (*active* children — a retired backend no longer appears here), in
    /// ascending order.
    pub fn active_children(&self) -> Vec<usize> {
        let mut active: Vec<usize> = self.ranges.iter().map(|r| r.child).collect();
        active.sort_unstable();
        active.dedup();
        active
    }

    /// Highest child index the map references.
    pub fn max_child(&self) -> usize {
        self.ranges.iter().map(|r| r.child).max().unwrap_or(0)
    }

    /// The replica set for hash byte `b` at replication factor `k`: the
    /// range owner plus the next `k-1` active children in index order,
    /// wrapping with the same [`ring_slot`] modulo the stripe map uses.
    /// Clamped to the number of active children.
    pub fn replicas(&self, b: u8, k: usize) -> Vec<usize> {
        let active = self.active_children();
        let owner = self.owner_of(b);
        let pos = active
            .iter()
            .position(|c| *c == owner)
            .expect("the owner is by definition active");
        (0..k.max(1).min(active.len()))
            .map(|i| active[ring_slot(pos as u64 + i as u64, active.len())])
            .collect()
    }
}

/// Construction recipe for a [`ShardedStore`], config-file friendly: the
/// textual range map, the replication factor, and one [`DeviceConfig`] per
/// child backend (heterogeneous tiers are the point — e.g.
/// `capacity_hdd()` bulk children fronted by an `optane_ssd()` child).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Range map in the `"00-7f=0,80-ff=1"` syntax.
    pub map: String,
    /// Copies kept of every extent (clamped to the active child count).
    pub replication: usize,
    /// Device model of each child store, by child index.
    pub backends: Vec<DeviceConfig>,
}

impl ShardSpec {
    /// A two-backend spec splitting the hash space between a disk-speed
    /// bulk child and an NVMe-speed child, `k` copies of every extent.
    pub fn hdd_plus_ssd(replication: usize) -> ShardSpec {
        ShardSpec {
            map: "00-7f=0,80-ff=1".into(),
            replication,
            backends: vec![DeviceConfig::capacity_hdd(), DeviceConfig::optane_ssd()],
        }
    }

    /// Builds the router: one [`CapacityTier`] per backend, the parsed map,
    /// the replication factor.
    pub fn build(&self) -> Result<ShardedStore, String> {
        let map = ShardMap::parse(&self.map)?;
        if self.backends.is_empty() {
            return Err("a sharded tier needs at least one backend".into());
        }
        if map.max_child() >= self.backends.len() {
            return Err(format!(
                "map references child {} but only {} backends are configured",
                map.max_child(),
                self.backends.len()
            ));
        }
        let children: Vec<Arc<dyn BackingStore>> = self
            .backends
            .iter()
            .map(|d| Arc::new(CapacityTier::new(*d)) as Arc<dyn BackingStore>)
            .collect();
        Ok(ShardedStore::new(children, map, self.replication))
    }
}

/// The migration work one misplaced extent needs: copies onto missing
/// desired replicas, pruning from children that should no longer hold it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Extent path.
    pub path: String,
    /// Extent stripe.
    pub stripe: u64,
    /// Extent size (planning-time; re-read verified at apply time).
    pub bytes: u64,
    /// Children that should hold a replica and currently do not.
    pub copy_to: Vec<usize>,
    /// Children holding a copy the current map no longer places there.
    pub remove_from: Vec<usize>,
}

/// What applying a [`MigrationPlan`] actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationOutcome {
    /// The extent was copied/pruned into its desired placement.
    Migrated {
        /// Bytes of the verified copy that was moved.
        bytes: u64,
        /// Replicas written.
        copies: usize,
        /// Stale copies removed.
        removed: usize,
    },
    /// The extent vanished before the move (deleted concurrently —
    /// delete-wins, nothing to migrate).
    Superseded,
    /// No replica verified against its checksum: the move was refused (a
    /// migration must never launder corruption) and the extent is left for
    /// the scrub pass to quarantine.
    Failed,
}

/// Placement audit of the whole tier at one instant — the conformance
/// oracle's "every range back to `k` replicas" check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementReport {
    /// Logical extents examined.
    pub extents: usize,
    /// Extents with fewer verified copies than the replication factor
    /// demands on their desired children.
    pub under_replicated: usize,
    /// Stale copies on children the map no longer places the extent on.
    pub stale_copies: usize,
}

impl PlacementReport {
    /// Whether the tier is fully converged on the current map.
    pub fn converged(&self) -> bool {
        self.under_replicated == 0 && self.stale_copies == 0
    }
}

/// Per-child lane labels for the registry (static, as [`SeriesKey`]
/// requires); children beyond the table share the last label.
const BACKEND_LANES: [&str; 8] = [
    "backend0", "backend1", "backend2", "backend3", "backend4", "backend5", "backend6", "backend7",
];

fn backend_lane(child: usize) -> &'static str {
    BACKEND_LANES[child.min(BACKEND_LANES.len() - 1)]
}

/// Per-child health/latency instruments, resolved once per child.
struct ChildTelemetry {
    write_extents: Counter,
    write_bytes: Counter,
    read_hits: Counter,
    corrupt_detected: Counter,
    repaired_extents: Counter,
    est_service_ns: themis_telemetry::Histogram,
    bytes_stored: Gauge,
}

/// Everything guarded by the router's map lock. Child `Arc`s are cloned
/// out before any child method is called (see the module docs on lock
/// discipline).
struct Inner {
    children: Vec<Arc<dyn BackingStore>>,
    map: ShardMap,
    replication: usize,
    generation: u64,
    telemetry: Vec<ChildTelemetry>,
    registry: Option<MetricsRegistry>,
}

impl Inner {
    fn intern_child(&mut self, child: usize) {
        let Some(registry) = &self.registry else {
            return;
        };
        while self.telemetry.len() <= child {
            let lane = backend_lane(self.telemetry.len());
            let key = SeriesKey::class(0, lane);
            self.telemetry.push(ChildTelemetry {
                write_extents: registry.counter(key, "write_extents"),
                write_bytes: registry.counter(key, "write_bytes"),
                read_hits: registry.counter(key, "read_hits"),
                corrupt_detected: registry.counter(key, "corrupt_detected"),
                repaired_extents: registry.counter(key, "repaired_extents"),
                est_service_ns: registry.histogram(key, "est_service_ns"),
                bytes_stored: registry.gauge(key, "bytes_stored"),
            });
        }
    }
}

/// The router itself. Implements [`BackingStore`] over the *logical*
/// keyspace (the union of its children with replicas deduplicated), so
/// every existing consumer — drain write-back, verified restore, the scrub
/// cursor — works against a sharded, replicated tier unchanged.
pub struct ShardedStore {
    /// Aggregate performance model the server charges tier I/O against:
    /// the slowest child at construction time (conservative — a replicated
    /// write is bounded by its slowest replica).
    device: DeviceConfig,
    inner: RwLock<Inner>,
}

/// A placement snapshot cloned out of the lock: child handles, map,
/// replication factor, generation.
type Snapshot = (Vec<Arc<dyn BackingStore>>, ShardMap, usize, u64);

impl ShardedStore {
    /// Builds a router over `children` with `map` and `replication` copies
    /// per extent. Panics if the map references a missing child.
    pub fn new(children: Vec<Arc<dyn BackingStore>>, map: ShardMap, replication: usize) -> Self {
        assert!(!children.is_empty(), "a sharded tier needs children");
        assert!(
            map.max_child() < children.len(),
            "shard map references child {} of {}",
            map.max_child(),
            children.len()
        );
        let device = children
            .iter()
            .map(|c| c.device())
            .min_by(|a, b| a.combined_bw().total_cmp(&b.combined_bw()))
            .expect("non-empty children");
        ShardedStore {
            device,
            inner: RwLock::new(Inner {
                children,
                map,
                replication: replication.max(1),
                generation: 0,
                telemetry: Vec::new(),
                registry: None,
            }),
        }
    }

    /// Attaches per-child health/latency series (`backendN` lanes:
    /// write/read/repair counters, an estimated-service-time histogram from
    /// each child's own device model, a stored-bytes gauge) to `registry`.
    /// Idempotent; children added later are interned on arrival.
    pub fn attach_telemetry(&self, registry: &MetricsRegistry) {
        let mut inner = self.inner.write();
        inner.registry = Some(registry.clone());
        let last = inner.children.len() - 1;
        inner.intern_child(last);
    }

    /// The current map generation; bumped by every [`Self::install_map`].
    /// The rebalance pipeline migrates whenever this moves past the
    /// generation it last converged on.
    pub fn generation(&self) -> u64 {
        self.inner.read().generation
    }

    /// The current map in its textual syntax.
    pub fn map_text(&self) -> String {
        self.inner.read().map.to_text()
    }

    /// The replication factor.
    pub fn replication(&self) -> usize {
        self.inner.read().replication
    }

    /// Total child stores (including retired ones still holding extents).
    pub fn child_count(&self) -> usize {
        self.inner.read().children.len()
    }

    /// Registers a new (empty) backend and returns its child index. The
    /// map is untouched — follow up with [`install_map`](Self::install_map)
    /// to route ranges at it.
    pub fn add_backend(&self, store: Arc<dyn BackingStore>) -> usize {
        let mut inner = self.inner.write();
        inner.children.push(store);
        let idx = inner.children.len() - 1;
        inner.intern_child(idx);
        idx
    }

    /// Installs a new map and replication factor, bumping the generation.
    /// A child absent from the new map is *retired*: its extents keep
    /// serving reads until the rebalance pass has moved them off. Returns
    /// the new generation, or an error if the map references a child that
    /// was never added.
    pub fn install_map(&self, map: ShardMap, replication: usize) -> Result<u64, String> {
        let mut inner = self.inner.write();
        if map.max_child() >= inner.children.len() {
            return Err(format!(
                "map references child {} but only {} exist",
                map.max_child(),
                inner.children.len()
            ));
        }
        inner.map = map;
        inner.replication = replication.max(1);
        inner.generation += 1;
        Ok(inner.generation)
    }

    fn snapshot(&self) -> Snapshot {
        let inner = self.inner.read();
        (
            inner.children.clone(),
            inner.map.clone(),
            inner.replication,
            inner.generation,
        )
    }

    /// Runs `f` with child `i`'s telemetry handles, if attached.
    fn with_telemetry(&self, child: usize, f: impl FnOnce(&ChildTelemetry)) {
        let inner = self.inner.read();
        if let Some(t) = inner.telemetry.get(child) {
            f(t);
        }
    }

    fn record_service(&self, child: usize, store: &dyn BackingStore, bytes: u64, write: bool) {
        self.with_telemetry(child, |t| {
            let kind = if write {
                themis_core::request::OpKind::Write
            } else {
                themis_core::request::OpKind::Read
            };
            let probe = themis_core::request::IoRequest::new(
                0,
                themis_core::entity::JobMeta::new(0u64, 0u32, 0u32, 1),
                kind,
                bytes.max(1),
                0,
            );
            t.est_service_ns
                .record(DeviceModel::new(store.device()).service_ns(&probe));
        });
    }

    /// The union-keyspace successor: the smallest child key strictly after
    /// `after`. Replicas collapse (same key); among children reporting the
    /// same key the largest length wins (lengths only diverge transiently
    /// mid-migration).
    fn union_next(
        children: &[Arc<dyn BackingStore>],
        after: Option<&(String, u64)>,
    ) -> Option<(String, u64, u64)> {
        let mut best: Option<(String, u64, u64)> = None;
        for child in children {
            if let Some((path, stripe, len)) = child.next_extent_after(after) {
                best = Some(match best.take() {
                    None => (path, stripe, len),
                    Some(b) => match (path.as_str(), stripe).cmp(&(b.0.as_str(), b.1)) {
                        std::cmp::Ordering::Less => (path, stripe, len),
                        std::cmp::Ordering::Equal => (b.0, b.1, b.2.max(len)),
                        std::cmp::Ordering::Greater => b,
                    },
                });
            }
        }
        best
    }

    /// Walks the logical extents of one path, summing `f` over them.
    fn fold_path(&self, path: &str, mut f: impl FnMut(u64)) {
        let (children, _, _, _) = self.snapshot();
        // `next_extent_after` excludes its bound, so probe stripe 0
        // explicitly before walking the strictly-after successors.
        if let Some(len) = children
            .iter()
            .filter_map(|c| c.read_back_with_checksum(path, 0))
            .map(|(d, _)| d.len() as u64)
            .max()
        {
            f(len);
        }
        let mut cursor = (path.to_string(), 0u64);
        while let Some((p, stripe, len)) = Self::union_next(&children, Some(&cursor)) {
            if p != path {
                break;
            }
            f(len);
            cursor = (p, stripe);
        }
    }

    /// One verified read with read-repair: every replica is checked, the
    /// first healthy copy is returned (and used to rewrite each missing or
    /// corrupt replica); with no healthy replica a corrupt pair is returned
    /// as-is so the caller's checksum verification fails honestly.
    fn read_repair(&self, path: &str, stripe: u64) -> Option<(Vec<u8>, u64)> {
        let (children, map, k, _) = self.snapshot();
        let replicas = map.replicas(shard_byte(path, stripe), k);
        let mut healthy: Option<Vec<u8>> = None;
        let mut corrupt: Option<(Vec<u8>, u64)> = None;
        let mut needs_repair: Vec<usize> = Vec::new();
        for &c in &replicas {
            match children[c].read_back_with_checksum(path, stripe) {
                Some((data, stored)) if extent_checksum(&data) == stored => {
                    if healthy.is_none() {
                        self.with_telemetry(c, |t| t.read_hits.inc());
                        self.record_service(c, children[c].as_ref(), data.len() as u64, false);
                        healthy = Some(data);
                    }
                }
                Some(pair) => {
                    self.with_telemetry(c, |t| t.corrupt_detected.inc());
                    corrupt = Some(pair);
                    needs_repair.push(c);
                }
                // A missing replica is only repairable if the extent exists
                // elsewhere; never treat it as damage.
                None => needs_repair.push(c),
            }
        }
        if healthy.is_none() {
            // Mid-migration the only clean copies may sit on children the
            // current map no longer selects (a just-retired backend, or a
            // range that moved before its extents did). Reads must not fail
            // while the rebalance pass is still chasing the map, so fall
            // back to any healthy copy anywhere and let the repair below
            // seed the desired replicas from it.
            for (c, child) in children.iter().enumerate() {
                if replicas.contains(&c) {
                    continue;
                }
                if let Some(data) = verified_read_back(child.as_ref(), path, stripe) {
                    self.with_telemetry(c, |t| t.read_hits.inc());
                    self.record_service(c, child.as_ref(), data.len() as u64, false);
                    healthy = Some(data);
                    break;
                }
            }
        }
        match healthy {
            Some(data) => {
                for c in needs_repair {
                    children[c].write_back(path, stripe, &data);
                    self.with_telemetry(c, |t| {
                        t.repaired_extents.inc();
                        t.bytes_stored.set(children[c].bytes_stored() as i64);
                    });
                }
                let sum = extent_checksum(&data);
                Some((data, sum))
            }
            None => corrupt,
        }
    }

    /// A checksum-clean copy from *any* child (not just current replicas —
    /// mid-migration the only copies may sit on retired children).
    fn any_verified_copy(
        children: &[Arc<dyn BackingStore>],
        path: &str,
        stripe: u64,
    ) -> Option<Vec<u8>> {
        children
            .iter()
            .find_map(|c| verified_read_back(c.as_ref(), path, stripe))
    }

    /// The migration an extent needs under the current map, or `None` when
    /// it is already placed correctly (every desired replica present, no
    /// stray copies).
    pub fn migration_for(&self, path: &str, stripe: u64) -> Option<MigrationPlan> {
        let (children, map, k, _) = self.snapshot();
        let desired = map.replicas(shard_byte(path, stripe), k);
        let mut bytes = 0u64;
        let holders: Vec<usize> = (0..children.len())
            .filter(|&c| {
                if let Some((data, _)) = children[c].read_back_with_checksum(path, stripe) {
                    bytes = bytes.max(data.len() as u64);
                    true
                } else {
                    false
                }
            })
            .collect();
        if holders.is_empty() {
            return None; // nothing stored (or deleted) — nothing to move
        }
        let copy_to: Vec<usize> = desired
            .iter()
            .copied()
            .filter(|c| !holders.contains(c))
            .collect();
        let remove_from: Vec<usize> = holders
            .iter()
            .copied()
            .filter(|c| !desired.contains(c))
            .collect();
        if copy_to.is_empty() && remove_from.is_empty() {
            return None;
        }
        Some(MigrationPlan {
            path: path.to_string(),
            stripe,
            bytes,
            copy_to,
            remove_from,
        })
    }

    /// The first logical extent strictly after `cursor` that needs
    /// migration, with its plan — the rebalance pipeline's work source.
    pub fn next_misplaced_after(
        &self,
        cursor: Option<&(String, u64)>,
    ) -> Option<(String, u64, MigrationPlan)> {
        let (children, _, _, _) = self.snapshot();
        let mut cursor = cursor.cloned();
        while let Some((path, stripe, _)) = Self::union_next(&children, cursor.as_ref()) {
            if let Some(plan) = self.migration_for(&path, stripe) {
                return Some((path, stripe, plan));
            }
            cursor = Some((path, stripe));
        }
        None
    }

    /// Executes one migration: re-verify a source copy (any child), write
    /// the missing desired replicas, prune the stray copies. The plan's
    /// copy/prune sets are recomputed at apply time, so a stale plan (map
    /// changed again, extent rewritten or deleted since planning) degrades
    /// to the right thing instead of acting on old placement.
    pub fn apply_migration(&self, plan: &MigrationPlan) -> MigrationOutcome {
        let Some(fresh) = self.migration_for(&plan.path, plan.stripe) else {
            // Already converged (or deleted): nothing to do.
            let (children, _, _, _) = self.snapshot();
            return if children.iter().any(|c| c.contains(&plan.path, plan.stripe)) {
                MigrationOutcome::Migrated {
                    bytes: 0,
                    copies: 0,
                    removed: 0,
                }
            } else {
                MigrationOutcome::Superseded
            };
        };
        let (children, _, _, _) = self.snapshot();
        let Some(data) = Self::any_verified_copy(&children, &fresh.path, fresh.stripe) else {
            return MigrationOutcome::Failed;
        };
        let mut copies = 0usize;
        for &c in &fresh.copy_to {
            children[c].write_back(&fresh.path, fresh.stripe, &data);
            copies += 1;
            self.record_service(c, children[c].as_ref(), data.len() as u64, true);
            self.with_telemetry(c, |t| {
                t.write_extents.inc();
                t.write_bytes.add(data.len() as u64);
                t.bytes_stored.set(children[c].bytes_stored() as i64);
            });
        }
        let mut removed = 0usize;
        for &c in &fresh.remove_from {
            if children[c].remove_extent(&fresh.path, fresh.stripe) > 0 {
                removed += 1;
                self.with_telemetry(c, |t| t.bytes_stored.set(children[c].bytes_stored() as i64));
            }
        }
        MigrationOutcome::Migrated {
            bytes: data.len() as u64,
            copies,
            removed,
        }
    }

    /// Audits every logical extent's placement against the current map —
    /// the conformance oracle's quiescence check.
    pub fn verify_placement(&self) -> PlacementReport {
        let (children, map, k, _) = self.snapshot();
        let mut report = PlacementReport::default();
        let mut cursor: Option<(String, u64)> = None;
        while let Some((path, stripe, _)) = Self::union_next(&children, cursor.as_ref()) {
            report.extents += 1;
            let desired = map.replicas(shard_byte(&path, stripe), k);
            let verified_desired = desired
                .iter()
                .filter(|&&c| verified_read_back(children[c].as_ref(), &path, stripe).is_some())
                .count();
            if verified_desired < desired.len() {
                report.under_replicated += 1;
            }
            report.stale_copies += (0..children.len())
                .filter(|c| !desired.contains(c) && children[*c].contains(&path, stripe))
                .count();
            cursor = Some((path, stripe));
        }
        report
    }
}

impl BackingStore for ShardedStore {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn device(&self) -> DeviceConfig {
        self.device
    }

    fn write_back(&self, path: &str, stripe: u64, data: &[u8]) {
        let (children, map, k, _) = self.snapshot();
        for c in map.replicas(shard_byte(path, stripe), k) {
            children[c].write_back(path, stripe, data);
            self.record_service(c, children[c].as_ref(), data.len() as u64, true);
            self.with_telemetry(c, |t| {
                t.write_extents.inc();
                t.write_bytes.add(data.len() as u64);
                t.bytes_stored.set(children[c].bytes_stored() as i64);
            });
        }
    }

    fn read_back(&self, path: &str, stripe: u64) -> Option<Vec<u8>> {
        self.read_repair(path, stripe).map(|(data, _)| data)
    }

    fn read_back_with_checksum(&self, path: &str, stripe: u64) -> Option<(Vec<u8>, u64)> {
        self.read_repair(path, stripe)
    }

    fn next_extent_after(&self, after: Option<&(String, u64)>) -> Option<(String, u64, u64)> {
        let (children, _, _, _) = self.snapshot();
        Self::union_next(&children, after)
    }

    fn contains(&self, path: &str, stripe: u64) -> bool {
        let (children, _, _, _) = self.snapshot();
        children.iter().any(|c| c.contains(path, stripe))
    }

    fn remove_path(&self, path: &str) -> u64 {
        // Logical bytes freed: the union size before removal, not the sum
        // over replicas (which would count every copy k times).
        let mut logical = 0u64;
        self.fold_path(path, |len| logical += len);
        let (children, _, _, _) = self.snapshot();
        for (c, child) in children.iter().enumerate() {
            if child.remove_path(path) > 0 {
                self.with_telemetry(c, |t| t.bytes_stored.set(child.bytes_stored() as i64));
            }
        }
        logical
    }

    fn as_sharded(&self) -> Option<&ShardedStore> {
        Some(self)
    }

    fn remove_extent(&self, path: &str, stripe: u64) -> u64 {
        let (children, _, _, _) = self.snapshot();
        let mut logical = 0u64;
        for (c, child) in children.iter().enumerate() {
            let freed = child.remove_extent(path, stripe);
            if freed > 0 {
                logical = logical.max(freed);
                self.with_telemetry(c, |t| t.bytes_stored.set(child.bytes_stored() as i64));
            }
        }
        logical
    }

    fn bytes_stored(&self) -> u64 {
        let (children, _, _, _) = self.snapshot();
        let mut total = 0u64;
        let mut cursor: Option<(String, u64)> = None;
        while let Some((path, stripe, len)) = Self::union_next(&children, cursor.as_ref()) {
            total += len;
            cursor = Some((path, stripe));
        }
        total
    }

    fn bytes_for(&self, path: &str) -> u64 {
        let mut total = 0u64;
        self.fold_path(path, |len| total += len);
        total
    }

    fn extent_count(&self) -> usize {
        let (children, _, _, _) = self.snapshot();
        let mut count = 0usize;
        let mut cursor: Option<(String, u64)> = None;
        while let Some((path, stripe, _)) = Self::union_next(&children, cursor.as_ref()) {
            count += 1;
            cursor = Some((path, stripe));
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_child_store(k: usize) -> ShardedStore {
        ShardSpec::hdd_plus_ssd(k).build().expect("valid spec")
    }

    fn tier_children(store: &ShardedStore) -> Vec<Arc<dyn BackingStore>> {
        store.snapshot().0
    }

    #[test]
    fn map_parses_formats_and_validates() {
        let map = ShardMap::parse("00-7f=0,80-ff=1").unwrap();
        assert_eq!(map.to_text(), "00-7f=0,80-ff=1");
        assert_eq!(map.owner_of(0x00), 0);
        assert_eq!(map.owner_of(0x7f), 0);
        assert_eq!(map.owner_of(0x80), 1);
        assert_eq!(map.owner_of(0xff), 1);
        assert_eq!(map.active_children(), vec![0, 1]);
        // Gaps, overlaps and truncated coverage are rejected.
        assert!(ShardMap::parse("00-7e=0,80-ff=1").is_err());
        assert!(ShardMap::parse("00-80=0,80-ff=1").is_err());
        assert!(ShardMap::parse("00-7f=0").is_err());
        assert!(ShardMap::parse("garbage").is_err());
        // Uniform splits cover the space for any n.
        for n in 1..6 {
            let u = ShardMap::uniform(n);
            assert_eq!(u.active_children().len(), n);
            let reparsed = ShardMap::parse(&u.to_text()).unwrap();
            assert_eq!(reparsed, u);
        }
    }

    #[test]
    fn replicas_are_distinct_active_children_via_ring_slot() {
        let map = ShardMap::parse("00-3f=0,40-7f=2,80-ff=5").unwrap();
        assert_eq!(map.replicas(0x00, 2), vec![0, 2]);
        assert_eq!(map.replicas(0x50, 2), vec![2, 5]);
        // Wraps past the end of the active list.
        assert_eq!(map.replicas(0x90, 2), vec![5, 0]);
        // k clamps to the active child count.
        assert_eq!(map.replicas(0x00, 9), vec![0, 2, 5]);
    }

    #[test]
    fn writes_land_on_k_replicas_and_reads_dedupe() {
        let store = two_child_store(2);
        store.write_back("/f", 0, &[7u8; 100]);
        store.write_back("/f", 1, &[8u8; 50]);
        let children = tier_children(&store);
        // k=2 over 2 children: every extent sits on both.
        for c in &children {
            assert!(c.contains("/f", 0) && c.contains("/f", 1));
        }
        // Logical accounting counts each extent once, not per replica.
        assert_eq!(store.bytes_stored(), 150);
        assert_eq!(store.extent_count(), 2);
        assert_eq!(store.bytes_for("/f"), 150);
        assert_eq!(store.read_back("/f", 0).unwrap(), vec![7u8; 100]);
        let (data, sum) = store.read_back_with_checksum("/f", 1).unwrap();
        assert_eq!(sum, extent_checksum(&data));
        // The logical cursor yields each key once.
        let mut seen = Vec::new();
        let mut cursor = None;
        while let Some((p, s, len)) = store.next_extent_after(cursor.as_ref()) {
            cursor = Some((p.clone(), s));
            seen.push((p, s, len));
        }
        assert_eq!(
            seen,
            vec![("/f".to_string(), 0, 100), ("/f".to_string(), 1, 50)]
        );
        // Logical removal reports union bytes, not replica-multiplied ones.
        assert_eq!(store.remove_path("/f"), 150);
        assert_eq!(store.bytes_stored(), 0);
    }

    #[test]
    fn read_repair_restores_a_lost_replica_from_the_healthy_one() {
        let store = two_child_store(2);
        store.write_back("/r", 3, &[5u8; 64]);
        let children = tier_children(&store);
        // Drop child 1's replica behind the router's back.
        assert_eq!(children[1].remove_extent("/r", 3), 64);
        assert!(!children[1].contains("/r", 3));
        // A verified read returns the healthy copy and repairs the hole.
        let data = verified_read_back(&store, "/r", 3).unwrap();
        assert_eq!(data, vec![5u8; 64]);
        assert!(children[1].contains("/r", 3));
        assert_eq!(
            store.verify_placement(),
            PlacementReport {
                extents: 1,
                under_replicated: 0,
                stale_copies: 0,
            }
        );
    }

    #[test]
    fn read_mid_migration_falls_back_to_a_retired_holder() {
        // Regression: a reshard that moves a range must not make its
        // not-yet-migrated extents unreadable. Write under one map, swap to
        // a map whose replica set no longer includes the holder, and the
        // verified read must still succeed — served from the stale child and
        // repaired onto the new one.
        let store = two_child_store(1);
        store.write_back("/mid", 0, &[7u8; 48]); // shard byte of ("/mid", 0) picks one child
        let holder = {
            let children = tier_children(&store);
            (0..2).find(|&c| children[c].contains("/mid", 0)).unwrap()
        };
        let other = 1 - holder;
        // New map routes everything to the child that does NOT hold it yet.
        let map = ShardMap::parse(&format!("00-ff={other}")).unwrap();
        store.install_map(map, 1).unwrap();
        let data = verified_read_back(&store, "/mid", 0).expect("stale holder must serve the read");
        assert_eq!(data, vec![7u8; 48]);
        // The read repaired the extent onto its desired replica.
        assert!(tier_children(&store)[other].contains("/mid", 0));
    }

    #[test]
    fn all_replicas_corrupt_is_reported_not_laundered() {
        let spec = ShardSpec::hdd_plus_ssd(2);
        let tiers: Vec<Arc<CapacityTier>> = spec
            .backends
            .iter()
            .map(|d| Arc::new(CapacityTier::new(*d)))
            .collect();
        let children: Vec<Arc<dyn BackingStore>> = tiers
            .iter()
            .map(|t| Arc::clone(t) as Arc<dyn BackingStore>)
            .collect();
        let store = ShardedStore::new(children, ShardMap::parse(&spec.map).unwrap(), 2);
        store.write_back("/c", 0, &[9u8; 32]);
        for t in &tiers {
            assert!(t.corrupt_extent("/c", 0, 1));
        }
        // The verified seam reports a miss; the raw read still surfaces the
        // corrupt pair so a scrub judge can quarantine it.
        assert!(verified_read_back(&store, "/c", 0).is_none());
        let (data, stored) = store.read_back_with_checksum("/c", 0).unwrap();
        assert_ne!(extent_checksum(&data), stored);
        // One corrupt + one healthy: the healthy copy wins and heals.
        let t0_corrupt = ShardSpec::hdd_plus_ssd(2);
        let tiers2: Vec<Arc<CapacityTier>> = t0_corrupt
            .backends
            .iter()
            .map(|d| Arc::new(CapacityTier::new(*d)))
            .collect();
        let children2: Vec<Arc<dyn BackingStore>> = tiers2
            .iter()
            .map(|t| Arc::clone(t) as Arc<dyn BackingStore>)
            .collect();
        let store2 = ShardedStore::new(children2, ShardMap::parse(&t0_corrupt.map).unwrap(), 2);
        store2.write_back("/c", 0, &[9u8; 32]);
        assert!(tiers2[0].corrupt_extent("/c", 0, 1));
        assert_eq!(verified_read_back(&store2, "/c", 0).unwrap(), vec![9u8; 32]);
        let (d0, s0) = tiers2[0].read_back_with_checksum("/c", 0).unwrap();
        assert_eq!(extent_checksum(&d0), s0, "corrupt replica was repaired");
    }

    #[test]
    fn reshard_yields_migrations_that_converge_the_placement() {
        let store = two_child_store(1);
        for stripe in 0..32u64 {
            store.write_back("/m", stripe, &[stripe as u8 + 1; 16]);
        }
        assert!(store.verify_placement().converged());
        assert!(store.next_misplaced_after(None).is_none());

        // Add a third backend, retire child 0, re-split — generation bumps.
        store.add_backend(Arc::new(CapacityTier::new(DeviceConfig::optane_ssd())));
        let gen = store
            .install_map(ShardMap::parse("00-7f=1,80-ff=2").unwrap(), 2)
            .unwrap();
        assert_eq!(gen, 1);
        let before = store.verify_placement();
        assert_eq!(before.extents, 32);
        assert!(!before.converged(), "a reshard must leave work: {before:?}");

        // Drain the migration work-list exactly as the pipeline would.
        let mut cursor: Option<(String, u64)> = None;
        let mut migrated = 0usize;
        while let Some((path, stripe, plan)) = store.next_misplaced_after(cursor.as_ref()) {
            match store.apply_migration(&plan) {
                MigrationOutcome::Migrated { bytes, .. } => {
                    assert_eq!(bytes, 16);
                    migrated += 1;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
            cursor = Some((path, stripe));
        }
        assert!(migrated > 0);
        let after = store.verify_placement();
        assert!(after.converged(), "placement not converged: {after:?}");
        assert_eq!(after.extents, 32);
        // Child 0 is fully drained; every extent is byte-identical and at
        // k=2 on the two active children.
        let children = tier_children(&store);
        assert_eq!(children[0].extent_count(), 0);
        for stripe in 0..32u64 {
            assert_eq!(
                verified_read_back(&store, "/m", stripe).unwrap(),
                vec![stripe as u8 + 1; 16]
            );
            assert!(children[1].contains("/m", stripe));
            assert!(children[2].contains("/m", stripe));
        }
        assert_eq!(store.bytes_stored(), 32 * 16);
    }

    #[test]
    fn migration_refuses_to_launder_an_all_corrupt_extent() {
        let tiers: Vec<Arc<CapacityTier>> = vec![
            Arc::new(CapacityTier::new(DeviceConfig::capacity_hdd())),
            Arc::new(CapacityTier::new(DeviceConfig::optane_ssd())),
        ];
        let children: Vec<Arc<dyn BackingStore>> = tiers
            .iter()
            .map(|t| Arc::clone(t) as Arc<dyn BackingStore>)
            .collect();
        let store = ShardedStore::new(children, ShardMap::parse("00-ff=0").unwrap(), 1);
        store.write_back("/x", 0, &[1u8; 8]);
        assert!(tiers[0].corrupt_extent("/x", 0, 0));
        // Re-route everything to child 1: the only copy is corrupt.
        store
            .install_map(ShardMap::parse("00-ff=1").unwrap(), 1)
            .unwrap();
        let (_, _, plan) = store.next_misplaced_after(None).unwrap();
        assert_eq!(store.apply_migration(&plan), MigrationOutcome::Failed);
        // The corrupt copy stays where the scrub pass can find it.
        assert!(tiers[0].contains("/x", 0));
        assert!(!tiers[1].contains("/x", 0));
        // A deleted extent supersedes its plan instead of failing.
        store.write_back("/y", 0, &[2u8; 8]);
        store
            .install_map(ShardMap::parse("00-ff=0").unwrap(), 1)
            .unwrap();
        let plan = store.migration_for("/y", 0).unwrap();
        store.remove_path("/y");
        assert_eq!(store.apply_migration(&plan), MigrationOutcome::Superseded);
    }

    #[test]
    fn device_model_is_the_slowest_child() {
        let store = two_child_store(2);
        assert_eq!(
            store.device().combined_bw(),
            DeviceConfig::capacity_hdd().combined_bw()
        );
        assert_eq!(store.name(), "sharded");
    }

    #[test]
    fn telemetry_tracks_per_child_writes_and_repairs() {
        let registry = MetricsRegistry::new();
        let store = two_child_store(2);
        store.attach_telemetry(&registry);
        store.write_back("/t", 0, &[3u8; 128]);
        let children = tier_children(&store);
        children[0].remove_extent("/t", 0);
        let _ = verified_read_back(&store, "/t", 0);
        let snap = registry.snapshot(0);
        let writes: u64 = (0..2)
            .map(|c| snap.counter(0, 0, backend_lane(c), "write_extents"))
            .sum();
        assert_eq!(writes, 2, "one replica write per child");
        let repairs: u64 = (0..2)
            .map(|c| snap.counter(0, 0, backend_lane(c), "repaired_extents"))
            .sum();
        assert_eq!(repairs, 1, "the dropped replica was repaired on read");
        assert_eq!(snap.gauge(0, 0, backend_lane(1), "bytes_stored"), 128);
    }
}
