//! The per-server rebalance pipeline: extent migration after a shard-map
//! change, admitted through the policy engine as
//! [`TrafficClass::Rebalance`](crate::TrafficClass::Rebalance) traffic —
//! the last reserved class.
//!
//! Where drain is driven by dirty foreground writes, restore by foreground
//! misses, and scrub by the pass timer, rebalance is driven by *placement*:
//! whenever the sharded capacity tier's map generation moves past the
//! generation this pipeline last converged on (a backend added, a backend
//! retired, ranges re-assigned, the replication factor changed), a
//! migration pass walks the tier's logical keyspace and synthesizes one
//! policy-visible [`IoRequest`] per misplaced extent. The server core
//! executes each migration through
//! [`ShardedStore::apply_migration`](crate::shard::ShardedStore::apply_migration)
//! when the engine releases the request, so every copy is re-verified
//! against its write-back checksum before it moves — a migration can heal
//! an under-replicated range but can never launder a corrupt extent past
//! the scrubber.
//!
//! The lane runs at
//! [`DrainConfig::rebalance_weight`](crate::pipeline::DrainConfig::rebalance_weight)
//! against the foreground like every other class: a reshard behind a busy
//! foreground costs the foreground a bounded share of device time and
//! expands into idle capacity when the foreground goes quiet.

use crate::pipeline::rebalance_meta;
use crate::shard::{MigrationPlan, ShardedStore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use themis_core::entity::JobMeta;
use themis_core::request::{IoRequest, OpKind};
use themis_telemetry::{Counter, MetricsRegistry, SeriesKey};

/// A point-in-time snapshot of one server's rebalance state, reported
/// through the `RebalanceStatus` control-plane message.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebalanceStatus {
    /// Whether automatic migration on shard-map changes is enabled.
    pub enabled: bool,
    /// Whether the tier behind this server is sharded at all (`false`
    /// means a plain single-backend tier: every other field stays zero).
    pub sharded: bool,
    /// The tier's current map generation.
    pub generation: u64,
    /// The generation the tier last fully converged on. Equal to
    /// `generation` when no migration is owed.
    pub converged_generation: u64,
    /// The current shard map in its textual `lo-hi=child` syntax.
    pub map: String,
    /// The configured replication factor.
    pub replication: usize,
    /// Whether a migration pass is currently in progress.
    pub pass_active: bool,
    /// Migrations admitted and not yet completed.
    pub inflight: usize,
    /// Bytes of migration work admitted since boot.
    pub requested_bytes: u64,
    /// Bytes whose migration completed since boot.
    pub migrated_bytes: u64,
    /// Bytes of admitted migrations that have not completed yet — derived
    /// as a saturating difference because the underlying counters are
    /// loaded independently (see `pending_restore_bytes` in `DrainStatus`
    /// for the same hazard).
    pub pending_bytes: u64,
    /// Extents whose placement this pipeline corrected since boot.
    pub migrated_extents: u64,
    /// Replica copies written by migrations since boot.
    pub copies_written: u64,
    /// Stale replicas pruned from retired placements since boot.
    pub removed_extents: u64,
    /// Migrations that found the extent already converged or deleted by the
    /// time they executed (delete-wins / a newer map took over).
    pub superseded_extents: u64,
    /// Migrations refused because no replica verified against its checksum
    /// (the extent is left in place for the scrubber to quarantine).
    pub failed_extents: u64,
    /// Completed migration passes since boot.
    pub passes_completed: u64,
}

impl RebalanceStatus {
    /// Whether the tier's placement matches its current map with no work
    /// in flight and nothing refused.
    pub fn is_converged(&self) -> bool {
        !self.pass_active
            && self.inflight == 0
            && self.generation == self.converged_generation
            && self.failed_extents == 0
    }
}

/// Pre-resolved registry handles mirroring [`RebalancePipeline`]'s
/// cumulative counters (lane `"rebalance"`).
#[derive(Debug)]
struct RebalanceStats {
    requested_bytes: Counter,
    migrated_bytes: Counter,
    migrated_extents: Counter,
    copies_written: Counter,
    removed_extents: Counter,
    superseded_extents: Counter,
    failed_extents: Counter,
    passes_completed: Counter,
}

/// Per-server rebalance bookkeeping: the pass cursor over the sharded
/// tier's logical keyspace, migrations in flight, and cumulative counters.
///
/// Mirrors [`ScrubPipeline`](crate::scrub::ScrubPipeline): the pipeline
/// decides *what* to migrate and synthesizes the policy-visible requests
/// under the rebalance identity; the server core executes each migration
/// when the engine releases it.
#[derive(Debug)]
pub struct RebalancePipeline {
    server: usize,
    enabled: bool,
    max_inflight: usize,
    /// Last key examined this pass; `None` at the start of a pass.
    cursor: Option<(String, u64)>,
    pass_active: bool,
    cursor_exhausted: bool,
    /// Generation the active pass is converging toward.
    target_generation: u64,
    /// Generation the tier last converged on.
    converged_generation: u64,
    /// A forced pass was demanded (heal scan) — runs even when `enabled`
    /// is false and even without a generation change.
    forced: bool,
    inflight: HashMap<u64, MigrationPlan>,
    requested_bytes: u64,
    migrated_bytes: u64,
    migrated_extents: u64,
    copies_written: u64,
    removed_extents: u64,
    superseded_extents: u64,
    failed_extents: u64,
    passes_completed: u64,
    stats: Option<RebalanceStats>,
}

impl RebalancePipeline {
    /// Creates the rebalance pipeline of `server`: `enabled` migrates
    /// automatically whenever the shard map's generation moves, admitting
    /// at most `max_inflight` migrations at a time.
    pub fn new(server: usize, enabled: bool, max_inflight: usize) -> Self {
        RebalancePipeline {
            server,
            enabled,
            max_inflight: max_inflight.max(1),
            cursor: None,
            pass_active: false,
            cursor_exhausted: false,
            target_generation: 0,
            converged_generation: 0,
            forced: false,
            inflight: HashMap::new(),
            requested_bytes: 0,
            migrated_bytes: 0,
            migrated_extents: 0,
            copies_written: 0,
            removed_extents: 0,
            superseded_extents: 0,
            failed_extents: 0,
            passes_completed: 0,
            stats: None,
        }
    }

    /// Resolves registry handles (lane `"rebalance"` on this pipeline's
    /// server) so every subsequent outcome is mirrored into `registry`.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        let key = SeriesKey::class(self.server, crate::TrafficClass::Rebalance.name());
        self.stats = Some(RebalanceStats {
            requested_bytes: registry.counter(key, "rebalance_requested_bytes"),
            migrated_bytes: registry.counter(key, "rebalance_migrated_bytes"),
            migrated_extents: registry.counter(key, "migrated_extents"),
            copies_written: registry.counter(key, "copies_written"),
            removed_extents: registry.counter(key, "removed_extents"),
            superseded_extents: registry.counter(key, "superseded_extents"),
            failed_extents: registry.counter(key, "failed_extents"),
            passes_completed: registry.counter(key, "passes_completed"),
        });
    }

    /// The rebalance job identity of this server.
    pub fn meta(&self) -> JobMeta {
        rebalance_meta(self.server)
    }

    /// Whether automatic migration on map changes is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Demands a migration pass even without a generation change — the
    /// heal scan: a pass over a converged map re-replicates any range a
    /// lost replica left under-replicated.
    pub fn force_pass(&mut self) {
        self.forced = true;
    }

    /// Admits the next misplaced extent this server owns under sequence
    /// number `seq`, starting a pass first when the tier's generation has
    /// moved (or a heal pass was forced). Returns the [`IoRequest`] to
    /// feed to the policy engine — a *write* costed at the extent's length
    /// (the migration streams one verified copy through a policy-granted
    /// service slot; the matching capacity-tier transfers are charged by
    /// the caller when the engine releases the request). `None` when no
    /// pass is due, the cursor is exhausted, or the pipelining depth is
    /// reached.
    ///
    /// `owns` decides which extents this server migrates (stripe → shard
    /// ownership, the same closure the scrubber uses), so a multi-server
    /// deployment migrates the shared tier exactly once.
    pub fn admit_next(
        &mut self,
        seq: u64,
        now_ns: u64,
        store: &ShardedStore,
        owns: impl Fn(&str, u64) -> bool,
    ) -> Option<IoRequest> {
        if !self.pass_active {
            let generation = store.generation();
            let due = self.forced || (self.enabled && generation > self.converged_generation);
            if !due {
                return None;
            }
            self.pass_active = true;
            self.cursor = None;
            self.cursor_exhausted = false;
            self.forced = false;
            self.target_generation = generation;
        }
        if self.cursor_exhausted || self.inflight.len() >= self.max_inflight {
            return None;
        }
        loop {
            let Some((path, stripe, plan)) = store.next_misplaced_after(self.cursor.as_ref())
            else {
                self.cursor_exhausted = true;
                return None;
            };
            self.cursor = Some((path.clone(), stripe));
            if !owns(&path, stripe) {
                continue;
            }
            let bytes = plan.bytes.max(1);
            self.requested_bytes += bytes;
            if let Some(s) = &self.stats {
                s.requested_bytes.add(bytes);
            }
            self.inflight.insert(seq, plan);
            return Some(IoRequest::new(
                seq,
                self.meta(),
                OpKind::Write,
                bytes,
                now_ns,
            ));
        }
    }

    /// Looks up an in-flight migration by request sequence number.
    pub fn inflight(&self, seq: u64) -> Option<&MigrationPlan> {
        self.inflight.get(&seq)
    }

    /// Completes a migration: removes it from the in-flight set and
    /// returns the plan so the caller can execute it and record the
    /// outcome with one of the `record_*` methods.
    pub fn complete(&mut self, seq: u64) -> Option<MigrationPlan> {
        self.inflight.remove(&seq)
    }

    /// Records an executed migration (`bytes` moved, `copies` replicas
    /// written, `removed` stale replicas pruned).
    pub fn record_migrated(&mut self, bytes: u64, copies: usize, removed: usize) {
        self.migrated_bytes += bytes;
        self.migrated_extents += 1;
        self.copies_written += copies as u64;
        self.removed_extents += removed as u64;
        if let Some(s) = &self.stats {
            s.migrated_bytes.add(bytes);
            s.migrated_extents.inc();
            s.copies_written.add(copies as u64);
            s.removed_extents.add(removed as u64);
        }
    }

    /// Records a migration that found nothing left to do (the extent was
    /// deleted or a newer pass already converged it).
    pub fn record_superseded(&mut self) {
        self.superseded_extents += 1;
        if let Some(s) = &self.stats {
            s.superseded_extents.inc();
        }
    }

    /// Records a migration refused because no replica verified — the
    /// extent stays put for the scrubber.
    pub fn record_failed(&mut self) {
        self.failed_extents += 1;
        if let Some(s) = &self.stats {
            s.failed_extents.inc();
        }
    }

    /// Finishes the pass if its cursor is exhausted and every in-flight
    /// migration has landed. The converged generation advances to the pass
    /// target; if the map moved again mid-pass, the next
    /// [`admit_next`](Self::admit_next) immediately starts a follow-up
    /// pass. Returns the generation converged on.
    pub fn finish_pass_if_idle(&mut self) -> Option<u64> {
        if !self.pass_active || !self.cursor_exhausted || !self.inflight.is_empty() {
            return None;
        }
        self.pass_active = false;
        self.cursor = None;
        self.cursor_exhausted = false;
        self.converged_generation = self.converged_generation.max(self.target_generation);
        self.passes_completed += 1;
        if let Some(s) = &self.stats {
            s.passes_completed.inc();
        }
        Some(self.converged_generation)
    }

    /// Whether any migration work is admitted and unfinished.
    pub fn is_busy(&self) -> bool {
        !self.inflight.is_empty()
    }

    /// Whether a pass still owes work for `store`'s current generation.
    pub fn owes_work(&self, store: &ShardedStore) -> bool {
        self.pass_active || (self.enabled && store.generation() > self.converged_generation)
    }

    /// Builds the status snapshot for the tier behind `store` (pass
    /// `None` for a plain, unsharded tier).
    pub fn status(&self, store: Option<&ShardedStore>) -> RebalanceStatus {
        let (sharded, generation, map, replication) = match store {
            Some(s) => (true, s.generation(), s.map_text(), s.replication()),
            None => (false, 0, String::new(), 0),
        };
        RebalanceStatus {
            enabled: self.enabled,
            sharded,
            generation,
            converged_generation: self.converged_generation,
            map,
            replication,
            pass_active: self.pass_active,
            inflight: self.inflight.len(),
            requested_bytes: self.requested_bytes,
            migrated_bytes: self.migrated_bytes,
            // Independently-maintained totals: saturate instead of trusting
            // update order (the satellite-1 audit rule).
            pending_bytes: self.requested_bytes.saturating_sub(self.migrated_bytes),
            migrated_extents: self.migrated_extents,
            copies_written: self.copies_written,
            removed_extents: self.removed_extents,
            superseded_extents: self.superseded_extents,
            failed_extents: self.failed_extents,
            passes_completed: self.passes_completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::{BackingStore, CapacityTier};
    use crate::pipeline::is_rebalance;
    use crate::shard::{MigrationOutcome, ShardMap, ShardSpec};
    use std::sync::Arc;
    use themis_device::DeviceConfig;

    fn seeded_store(extents: u64) -> ShardedStore {
        let store = ShardSpec::hdd_plus_ssd(1).build().unwrap();
        for stripe in 0..extents {
            store.write_back("/ckpt", stripe, &[stripe as u8; 32]);
        }
        store
    }

    /// Drives the pipeline to quiescence against `store`, applying each
    /// migration exactly as the server core would. Returns the requests
    /// released.
    fn drain_pipeline(p: &mut RebalancePipeline, store: &ShardedStore) -> Vec<IoRequest> {
        let mut seq = 1u64;
        let mut released = Vec::new();
        loop {
            while let Some(req) = p.admit_next(seq, 0, store, |_, _| true) {
                let plan = p.complete(req.seq).expect("inflight");
                match store.apply_migration(&plan) {
                    MigrationOutcome::Migrated {
                        bytes,
                        copies,
                        removed,
                    } => p.record_migrated(bytes, copies, removed),
                    MigrationOutcome::Superseded => p.record_superseded(),
                    MigrationOutcome::Failed => p.record_failed(),
                }
                released.push(req);
                seq += 1;
            }
            if p.finish_pass_if_idle().is_none() || !p.owes_work(store) {
                break;
            }
        }
        released
    }

    #[test]
    fn idle_until_the_generation_moves_then_converges() {
        let store = seeded_store(16);
        let mut p = RebalancePipeline::new(0, true, 4);
        assert!(p.admit_next(1, 0, &store, |_, _| true).is_none());
        assert!(p.status(Some(&store)).is_converged());

        // Add a backend, retire child 0, double the replication.
        store.add_backend(Arc::new(CapacityTier::new(DeviceConfig::optane_ssd())));
        store
            .install_map(ShardMap::parse("00-7f=1,80-ff=2").unwrap(), 2)
            .unwrap();
        assert!(p.owes_work(&store));
        let released = drain_pipeline(&mut p, &store);
        assert!(!released.is_empty());
        assert!(released.iter().all(|r| is_rebalance(&r.meta)));
        assert!(store.verify_placement().converged());
        let status = p.status(Some(&store));
        assert!(status.is_converged(), "{status:?}");
        assert_eq!(status.generation, 1);
        assert_eq!(status.converged_generation, 1);
        assert_eq!(status.migrated_extents, 16);
        assert_eq!(status.failed_extents, 0);
        assert_eq!(status.pending_bytes, 0);
        assert_eq!(status.passes_completed, 1);
        assert_eq!(status.map, "00-7f=1,80-ff=2");
        assert_eq!(status.replication, 2);
    }

    #[test]
    fn disabled_pipeline_only_moves_when_forced() {
        let store = seeded_store(4);
        let mut p = RebalancePipeline::new(0, false, 4);
        store
            .install_map(ShardMap::parse("00-ff=1").unwrap(), 1)
            .unwrap();
        assert!(p.admit_next(1, 0, &store, |_, _| true).is_none());
        assert!(!store.verify_placement().converged());
        // A forced heal pass migrates regardless of `enabled`.
        p.force_pass();
        drain_pipeline(&mut p, &store);
        assert!(store.verify_placement().converged());
    }

    #[test]
    fn ownership_filter_splits_the_work() {
        let store = seeded_store(16);
        store
            .install_map(ShardMap::parse("00-ff=1").unwrap(), 1)
            .unwrap();
        // Only extents hashed onto (retired) child 0 are misplaced; server
        // 0 owns the even stripes among them and its pass leaves the odd
        // ones for server 1's pipeline.
        let misplaced_even = (0..16u64)
            .filter(|s| s % 2 == 0 && crate::shard::shard_byte("/ckpt", *s) < 0x80)
            .count() as u64;
        assert!(misplaced_even > 0, "hash spread left nothing to migrate");
        let mut p0 = RebalancePipeline::new(0, true, 4);
        let mut seq = 1u64;
        loop {
            while let Some(req) = p0.admit_next(seq, 0, &store, |_, s| s % 2 == 0) {
                let plan = p0.complete(req.seq).unwrap();
                match store.apply_migration(&plan) {
                    MigrationOutcome::Migrated {
                        bytes,
                        copies,
                        removed,
                    } => p0.record_migrated(bytes, copies, removed),
                    MigrationOutcome::Superseded => p0.record_superseded(),
                    MigrationOutcome::Failed => p0.record_failed(),
                }
                seq += 1;
            }
            if p0.finish_pass_if_idle().is_some() {
                break;
            }
        }
        assert_eq!(p0.status(Some(&store)).migrated_extents, misplaced_even);
        assert!(!store.verify_placement().converged());
        let mut p1 = RebalancePipeline::new(1, true, 4);
        drain_pipeline(&mut p1, &store);
        assert!(store.verify_placement().converged());
    }

    #[test]
    fn depth_limits_inflight_and_busy_tracks_it() {
        let store = seeded_store(8);
        store
            .install_map(ShardMap::parse("00-ff=1").unwrap(), 1)
            .unwrap();
        let mut p = RebalancePipeline::new(0, true, 2);
        assert!(p.admit_next(1, 0, &store, |_, _| true).is_some());
        assert!(p.admit_next(2, 0, &store, |_, _| true).is_some());
        assert!(p.admit_next(3, 0, &store, |_, _| true).is_none());
        assert!(p.is_busy());
        assert_eq!(p.status(Some(&store)).inflight, 2);
        let plan = p.complete(1).unwrap();
        assert_eq!(
            store.apply_migration(&plan),
            MigrationOutcome::Migrated {
                bytes: 32,
                copies: 1,
                removed: 1
            }
        );
        p.record_migrated(32, 1, 1);
        assert!(p.admit_next(3, 0, &store, |_, _| true).is_some());
    }

    #[test]
    fn telemetry_mirrors_every_counter() {
        let registry = MetricsRegistry::new();
        let store = seeded_store(4);
        store
            .install_map(ShardMap::parse("00-ff=1").unwrap(), 1)
            .unwrap();
        let mut p = RebalancePipeline::new(0, true, 4);
        p.attach_telemetry(&registry);
        drain_pipeline(&mut p, &store);
        let snap = registry.snapshot(0);
        let status = p.status(Some(&store));
        assert_eq!(
            snap.counter(0, 0, "rebalance", "rebalance_migrated_bytes"),
            status.migrated_bytes
        );
        assert_eq!(
            snap.counter(0, 0, "rebalance", "rebalance_requested_bytes"),
            status.requested_bytes
        );
        assert_eq!(
            snap.counter(0, 0, "rebalance", "migrated_extents"),
            status.migrated_extents
        );
        assert_eq!(
            snap.counter(0, 0, "rebalance", "passes_completed"),
            status.passes_completed
        );
    }
}
