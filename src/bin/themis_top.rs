//! `themis-top`: a live telemetry viewer for a ThemisIO deployment.
//!
//! Starts a staged multi-server deployment, runs a few synthetic tenants
//! against it, and renders the metrics control plane at a fixed cadence —
//! per-tenant completion tables, per-class lane counters, capacity gauges —
//! finishing with a scheduler decision-trace tail. Everything shown comes
//! through the same `MetricsSnapshot` / `TraceDump` wire messages any
//! client can send; nothing reads server internals out of band.
//!
//! ```text
//! cargo run --bin themis-top -- [--servers N] [--tenants J] [--ticks K]
//!                                [--interval-ms MS] [--trace M]
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use themisio::prelude::*;

/// Adapts the deployment's in-process connection to the client crate's
/// `ServerLink` trait.
struct Link(themisio::server::ClientConnection);

impl ServerLink for Link {
    fn send(&self, msg: ClientMessage) {
        self.0.send(msg);
    }
    fn recv(&self, timeout: Duration) -> Option<ServerMessage> {
        self.0.recv_timeout(timeout)
    }
}

struct Options {
    servers: usize,
    tenants: usize,
    ticks: usize,
    interval_ms: u64,
    trace: u64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        servers: 2,
        tenants: 3,
        ticks: 5,
        interval_ms: 200,
        trace: 16,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{name} expects a numeric value"))
        };
        match flag.as_str() {
            "--servers" => opts.servers = value("--servers") as usize,
            "--tenants" => opts.tenants = value("--tenants") as usize,
            "--ticks" => opts.ticks = value("--ticks") as usize,
            "--interval-ms" => opts.interval_ms = value("--interval-ms"),
            "--trace" => opts.trace = value("--trace"),
            "--help" | "-h" => {
                println!(
                    "themis-top [--servers N] [--tenants J] [--ticks K] \
                     [--interval-ms MS] [--trace M]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    opts
}

/// `1536` → `"1.5K"`, keeping the table columns narrow.
fn human(n: u64) -> String {
    match n {
        0..=9_999 => format!("{n}"),
        10_000..=9_999_999 => format!("{:.1}K", n as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}M", n as f64 / 1e6),
        _ => format!("{:.1}G", n as f64 / 1e9),
    }
}

fn render(snapshot: &MetricsSnapshot, servers: usize) {
    println!("--- metrics @ {} ns ---", snapshot.taken_ns);
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12}",
        "tenant", "ops", "bytes", "queue p99", "service p99"
    );
    for tenant in snapshot.tenants() {
        // Counters sum across servers; for latency show the worst per-server
        // p99 (histograms are per-server, a max is the honest aggregate).
        let ops = snapshot.tenant_counter_sum(tenant, "foreground", "ops_completed");
        let bytes = snapshot.tenant_counter_sum(tenant, "foreground", "bytes_completed");
        let queue = (0..servers)
            .map(|s| {
                snapshot
                    .histogram(s as u32, tenant, "foreground", "queue_delay_ns")
                    .p99
            })
            .max()
            .unwrap_or(0);
        let service = (0..servers)
            .map(|s| {
                snapshot
                    .histogram(s as u32, tenant, "foreground", "service_ns")
                    .p99
            })
            .max()
            .unwrap_or(0);
        println!(
            "{:<8} {:>10} {:>10} {:>10}ns {:>10}ns",
            tenant,
            human(ops),
            human(bytes),
            human(queue),
            human(service)
        );
    }
    println!(
        "{:<8} {:>10} {:>10} {:>12}",
        "lane", "admitted", "charged", "uncharged"
    );
    for lane in ["drain", "restore", "scrub", "rebalance", "replicate"] {
        let admitted = snapshot.lane_counter_sum(lane, "admitted_bytes");
        let charged = snapshot.lane_counter_sum(lane, "selected_charged_bytes");
        let uncharged = snapshot.lane_counter_sum(lane, "selected_uncharged_bytes");
        if admitted + charged + uncharged == 0 {
            continue;
        }
        println!(
            "{:<8} {:>10} {:>10} {:>12}",
            lane,
            human(admitted),
            human(charged),
            human(uncharged)
        );
    }
    for server in 0..servers {
        let s = server as u32;
        println!(
            "srv{server}: resident={} dirty={} backing={} drained={} restored={} migrated={} replicated={} parked={}",
            human(snapshot.gauge(s, 0, "fs", "resident_bytes").max(0) as u64),
            human(snapshot.gauge(s, 0, "fs", "dirty_bytes").max(0) as u64),
            human(snapshot.gauge(s, 0, "fs", "backing_bytes").max(0) as u64),
            human(snapshot.counter(s, 0, "drain", "drained_bytes")),
            human(snapshot.counter(s, 0, "restore", "restored_bytes")),
            human(snapshot.counter(s, 0, "rebalance", "rebalance_migrated_bytes")),
            human(snapshot.counter(s, 0, "replicate", "replicate_replicated_bytes")),
            human(snapshot.counter(s, 0, "foreground", "parked_ops")),
        );
    }
}

fn main() {
    let opts = parse_args();
    let deployment = Arc::new(Deployment::start(opts.servers, |_| ServerConfig {
        algorithm: Algorithm::Themis(Policy::size_fair()),
        staging: Some(StagingConfig {
            backing_device: DeviceConfig::default(),
            drain: DrainConfig {
                // Tight watermarks so eviction and stage-in traffic show up
                // within a short run.
                high_watermark_bytes: 8 << 20,
                low_watermark_bytes: 4 << 20,
                // The replicate lane ships disabled in the class registry;
                // switch it on so the lane table and per-server replicated
                // counter have traffic to show.
                classes: ClassWeights::default().enable(TrafficClass::Replicate, 16),
                ..DrainConfig::default()
            },
            // Single capacity device; pass a ShardSpec here to demo the
            // sharded tier instead.
            sharding: None,
            // Every demo write is local_plus_one, so the replicate column
            // fills in within a few ticks.
            durability: Some(DurabilitySpec::new(DurabilityMode::LocalPlusOne)),
        }),
        ..ServerConfig::default()
    }));
    println!(
        "themis-top: {} servers, {} tenants, {} ticks every {} ms",
        opts.servers, opts.tenants, opts.ticks, opts.interval_ms
    );

    // Synthetic tenants: each writes and re-reads its own checkpoint file in
    // a loop, with job sizes 8, 16, 24, ... so size-fair shares differ.
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for tenant in 0..opts.tenants {
        let deployment = Arc::clone(&deployment);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let job = tenant as u64 + 1;
            let meta = JobMeta::new(job, 1000 + tenant as u32, 42u32, 8 * (tenant as u32 + 1));
            let links: Vec<Link> = (0..deployment.server_count())
                .map(|i| Link(deployment.connect(i)))
                .collect();
            let client = ThemisClient::new(meta, links, Namespace::default_fs());
            client.hello();
            // Racy across tenants: whoever loses simply finds it created.
            let _ = client.mkdir_all("/fs/top");
            let path = format!("/fs/top/job-{job}.ckpt");
            let payload = vec![tenant as u8; 1 << 20];
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let Ok(fd) = client.open(&path, true, round == 0, false) else {
                    continue;
                };
                let _ = client.write(fd, &payload);
                let _ = client.lseek(fd, 0, 0);
                let _ = client.read(fd, 64 << 10);
                let _ = client.close(fd);
                round += 1;
            }
            client.bye();
        }));
    }

    // The observer: an un-registered control connection (no hello, so it
    // never dilutes tenant shares) cutting one cluster-wide snapshot per
    // tick — the registry is shared, any server answers for all of them.
    let links: Vec<Link> = (0..deployment.server_count())
        .map(|i| Link(deployment.connect(i)))
        .collect();
    let observer = ThemisClient::new(
        JobMeta::new(0u64, 0u32, 0u32, 1),
        links,
        Namespace::default_fs(),
    );
    for tick in 0..opts.ticks {
        std::thread::sleep(Duration::from_millis(opts.interval_ms));
        match observer.metrics_snapshot(tick % opts.servers) {
            Ok(snapshot) => render(&snapshot, opts.servers),
            Err(e) => println!("snapshot failed: {e}"),
        }
    }

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        let _ = w.join();
    }

    if DecisionTrace::enabled() {
        for server in 0..opts.servers {
            match observer.trace_dump(server, opts.trace) {
                Ok(dump) => {
                    println!("--- srv{server} decision trace (newest {}) ---", opts.trace);
                    print!("{}", dump.render());
                }
                Err(e) => println!("trace dump failed: {e}"),
            }
        }
    } else {
        println!("(decision tracing compiled out: themis-telemetry built without `trace`)");
    }
    deployment.shutdown();
}
