//! # ThemisIO-RS
//!
//! A from-scratch Rust reproduction of **"Fine-grained Policy-driven I/O
//! Sharing for Burst Buffers"** (SC 2023): the ThemisIO policy engine
//! (statistical tokens, primitive and composite sharing policies, λ-delayed
//! global fairness), a user-space burst-buffer file system, a client with a
//! POSIX-flavoured API, a threaded multi-server runtime, reference
//! implementations of the FIFO / GIFT / TBF baselines, and a deterministic
//! simulator that regenerates every figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace's public API so downstream
//! users can depend on a single crate:
//!
//! ```
//! use themisio::prelude::*;
//!
//! // Parse an administrator-facing policy string and compute shares.
//! let policy: Policy = "group-user-size-fair".parse().unwrap();
//! let jobs = [
//!     JobMeta::new(1u64, 1u32, 1u32, 16),
//!     JobMeta::new(2u64, 2u32, 1u32, 8),
//! ];
//! let shares = compute_shares(&policy, &jobs);
//! assert!((shares.total() - 1.0).abs() < 1e-9);
//! ```
//!
//! The individual subsystems are available as modules:
//!
//! * [`core`] — policies, shares, statistical tokens, schedulers, λ-sync;
//! * [`fs`] — the user-space burst-buffer file system;
//! * [`device`] — the storage device model;
//! * [`net`] — wire messages and in-process transport;
//! * [`baselines`] — FIFO, GIFT and TBF;
//! * [`stage`] — the staging subsystem: capacity tier, drain pipeline,
//!   staged policy engine;
//! * [`server`] — the server core and threaded deployment runtime;
//! * [`client`] — the POSIX-flavoured client;
//! * [`sim`] — the discrete-event simulator and workload/application models;
//! * [`telemetry`] — the live metrics registry, decision tracing and
//!   snapshot control plane (see the `themis-top` binary).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use themis_baselines as baselines;
pub use themis_client as client;
pub use themis_core as core;
pub use themis_device as device;
pub use themis_fs as fs;
pub use themis_net as net;
pub use themis_server as server;
pub use themis_sim as sim;
pub use themis_stage as stage;
pub use themis_telemetry as telemetry;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use themis_baselines::{Algorithm, FifoScheduler, GiftScheduler, TbfScheduler};
    pub use themis_client::{Namespace, ServerLink, ThemisClient};
    pub use themis_core::prelude::*;
    pub use themis_device::{DeviceConfig, DeviceModel, DeviceTimeline};
    pub use themis_fs::{
        BurstBufferFs, FsError, HashRing, OpenFlags, ServerId, StripeConfig, Whence,
    };
    pub use themis_net::{ClientMessage, FsOp, FsReply, ServerMessage, StageReply};
    pub use themis_server::{Deployment, ServerConfig, ServerCore};
    pub use themis_sim::{
        App, OpPattern, SimConfig, SimJob, SimResult, SimStagingConfig, Simulation,
    };
    pub use themis_stage::{
        BackingStore, CapacityTier, ClassWeights, DrainConfig, DrainStatus, ReplicateStatus,
        ScrubPipeline, ScrubStatus, StagedEngine, StagingConfig, TrafficClass,
    };
    pub use themis_telemetry::{
        DecisionTrace, MetricsRegistry, MetricsSnapshot, SeriesKey, TraceDump, TraceKind,
    };
}
