//! Quickstart: start a two-server ThemisIO deployment with a size-fair
//! policy, connect a client, and do some POSIX-style I/O through the burst
//! buffer.
//!
//! Run with `cargo run --example quickstart`.

use std::time::Duration;
use themisio::prelude::*;

/// Adapts the deployment's in-process connection to the client crate's
/// `ServerLink` trait.
struct Link(themisio::server::ClientConnection);

impl ServerLink for Link {
    fn send(&self, msg: ClientMessage) {
        self.0.send(msg);
    }
    fn recv(&self, timeout: Duration) -> Option<ServerMessage> {
        self.0.recv_timeout(timeout)
    }
}

fn main() {
    // 1. Start two burst-buffer servers arbitrating size-fair.
    let deployment = Deployment::start(2, |_| ServerConfig {
        algorithm: Algorithm::Themis(Policy::size_fair()),
        ..ServerConfig::default()
    });
    println!(
        "started {} ThemisIO servers (size-fair policy)",
        deployment.server_count()
    );

    // 2. Create a client for a 4-node job owned by user 1001 / group 42.
    //    The job metadata travels inside every I/O request, which is all the
    //    servers need to enforce any sharing policy.
    let meta = JobMeta::new(12345u64, 1001u32, 42u32, 4);
    let links: Vec<Link> = (0..deployment.server_count())
        .map(|i| Link(deployment.connect(i)))
        .collect();
    let client = ThemisClient::new(meta, links, Namespace::default_fs());
    let policies = client.hello();
    println!("connected; servers report policy: {policies:?}");

    // 3. Ordinary POSIX-ish I/O under the /fs namespace.
    client.mkdir_all("/fs/run-001").expect("mkdir");
    let fd = client
        .open("/fs/run-001/checkpoint.dat", true, true, false)
        .expect("open");
    let payload = vec![0xAB_u8; 4 << 20];
    let written = client.write(fd, &payload).expect("write");
    client.lseek(fd, 0, 0).expect("seek");
    let back = client.read(fd, written).expect("read");
    assert_eq!(back, payload);
    client.close(fd).expect("close");

    let st = client.stat("/fs/run-001/checkpoint.dat").expect("stat");
    println!(
        "checkpoint.dat: {} bytes across {} stripe(s)",
        st.size, st.stripe_count
    );
    println!(
        "directory listing: {:?}",
        client.readdir("/fs/run-001").unwrap()
    );

    // 4. Paths outside the namespace are not intercepted.
    assert!(client.stat("/home/user/notes.txt").is_err());

    // 5. Live policy reconfiguration: swap the sharing policy on every
    //    running server without restarting anything. The weighted DSL string
    //    gives the first user in each scope twice the share of its peers.
    let weighted: Policy = "user[2]-then-size-fair".parse().expect("valid DSL");
    let epochs = client.set_policy(&weighted).expect("set policy");
    println!("switched live to '{weighted}' (per-server epochs {epochs:?})");
    let (active, epoch) = client.get_policy(0).expect("get policy");
    println!("server 0 now arbitrates under '{active}' at epoch {epoch}");
    assert_eq!(active, weighted);

    // The same policy can be built fluently instead of parsed.
    let built = Policy::builder()
        .user_weighted(2)
        .size_fair()
        .expect("valid policy");
    assert_eq!(built, weighted);

    client.bye();
    deployment.shutdown();
    println!("done");
}
