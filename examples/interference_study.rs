//! Interference study: reproduce the shape of Fig. 1 / Fig. 13 — how much a
//! background I/O hog slows down real applications under FIFO versus the
//! ThemisIO size-fair policy.
//!
//! Run with `cargo run --release --example interference_study`.

use themisio::prelude::*;
use themisio::sim::metrics::slowdown;

fn time_to_solution(app: App, algorithm: Algorithm, with_background: bool) -> f64 {
    let app_meta = JobMeta::new(1u64, 10u32, 1u32, app.nodes());
    let mut jobs = vec![app.job(app_meta)];
    if with_background {
        jobs.push(SimJob::background_hog(JobMeta::new(99u64, 99u32, 2u32, 1)));
    }
    Simulation::new(SimConfig::new(1, algorithm), jobs)
        .run()
        .time_to_solution_secs(JobId(1))
}

fn main() {
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "application", "baseline s", "FIFO s", "FIFO slow%", "size-fair s", "fair slow%"
    );
    for app in App::all() {
        let base = time_to_solution(app, Algorithm::Fifo, false);
        let fifo = time_to_solution(app, Algorithm::Fifo, true);
        let fair = time_to_solution(app, Algorithm::Themis(Policy::size_fair()), true);
        println!(
            "{:<22} {:>10.2} {:>12.2} {:>11.1}% {:>12.2} {:>11.1}%",
            app.name(),
            base,
            fifo,
            100.0 * slowdown(base, fifo),
            fair,
            100.0 * slowdown(base, fair),
        );
    }
    println!("\nThe size-fair policy should eliminate most of the FIFO interference slowdown.");
}
