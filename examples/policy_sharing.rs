//! Policy sharing demo: replay the paper's Fig. 8/9 scenarios in the
//! simulator and print per-job throughput under different sharing policies.
//!
//! Run with `cargo run --release --example policy_sharing`.

use themisio::prelude::*;

fn run_policy(policy: Policy) {
    // A 4-node benchmark job and a 1-node benchmark job compete for a single
    // burst-buffer server (Fig. 8): each process writes 10 MB then reads it
    // back, repeatedly. The big job runs for 6 simulated seconds, the small
    // one joins after 1.5 s for 3 s.
    let big = JobMeta::new(1u64, 1u32, 1u32, 4);
    let small = JobMeta::new(2u64, 2u32, 1u32, 1);
    let jobs = vec![
        SimJob::write_read_cycle(big, 224).running_for(6_000_000_000),
        SimJob::write_read_cycle(small, 56)
            .starting_at(1_500_000_000)
            .running_for(3_000_000_000),
    ];
    let result = Simulation::new(SimConfig::new(1, Algorithm::Themis(policy.clone())), jobs).run();
    let series = result.metrics.throughput_series(1_000_000_000);
    println!("\n=== policy: {policy} ===");
    println!(
        "  4-node job median throughput: {:8.0} MB/s",
        series.median_active_mb_per_sec(JobId(1))
    );
    println!(
        "  1-node job median throughput: {:8.0} MB/s",
        series.median_active_mb_per_sec(JobId(2))
    );
    println!(
        "  second-by-second aggregate  : {:?}",
        series
            .aggregate_mb_per_sec()
            .iter()
            .map(|v| *v as u64)
            .collect::<Vec<_>>()
    );
}

fn main() {
    for policy in [
        Policy::size_fair(),
        Policy::job_fair(),
        Policy::user_fair(),
        "user-then-size-fair".parse().unwrap(),
        // Weighted tiers: user 1 (the premium tenant) gets 2x user 2's share.
        "user[2]-then-size-fair".parse().unwrap(),
    ] {
        run_policy(policy);
    }
    println!(
        "\nUnder size-fair the 4-node job gets ~4x the 1-node job; under job-fair they are equal."
    );
    println!("Under user[2]-then-size-fair, user 1 receives twice user 2's bandwidth.");

    // Live reconfiguration in the simulator: start job-fair, swap to
    // size-fair mid-run, exactly like a control-plane SetPolicy.
    let big = JobMeta::new(1u64, 1u32, 1u32, 4);
    let small = JobMeta::new(2u64, 2u32, 1u32, 1);
    let jobs = vec![
        SimJob::write_read_cycle(big, 224).running_for(6_000_000_000),
        SimJob::write_read_cycle(small, 56).running_for(6_000_000_000),
    ];
    let mut config = SimConfig::new(1, Algorithm::Themis(Policy::job_fair()));
    config.policy_schedule = vec![themisio::sim::PolicyChange {
        at_ns: 3_000_000_000,
        policy: Policy::size_fair(),
    }];
    let result = Simulation::new(config, jobs).run();
    let series = result.metrics.throughput_series(1_000_000_000);
    println!("\n=== live swap: job-fair -> size-fair at t=3s ===");
    println!(
        "  4-node job per-second MB/s: {:?}",
        series
            .mb_per_sec(JobId(1))
            .iter()
            .map(|v| *v as u64)
            .collect::<Vec<_>>()
    );
    println!(
        "  1-node job per-second MB/s: {:?}",
        series
            .mb_per_sec(JobId(2))
            .iter()
            .map(|v| *v as u64)
            .collect::<Vec<_>>()
    );
}
