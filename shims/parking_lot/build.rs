//! Maps the `lockcheck` cargo feature onto the `lockcheck` cfg, so the shim
//! code has a single predicate (`#[cfg(lockcheck)]`) no matter whether the
//! checker was enabled per-crate (`--features lockcheck`) or workspace-wide
//! (`RUSTFLAGS="--cfg lockcheck"` — the CI analysis job's corpus run).

fn main() {
    println!("cargo::rustc-check-cfg=cfg(lockcheck)");
    if std::env::var_os("CARGO_FEATURE_LOCKCHECK").is_some() {
        println!("cargo::rustc-cfg=lockcheck");
    }
    println!("cargo::rerun-if-changed=build.rs");
}
