//! Offline stand-in for `parking_lot`: the same non-poisoning `lock()` /
//! `read()` / `write()` API, backed by `std::sync`. Poisoned locks are
//! recovered transparently (parking_lot has no poisoning), so panicking
//! threads never wedge the burst-buffer state for everyone else.
//!
//! # Lockdep (`lockcheck`)
//!
//! The container is offline — no miri, no TSan, no clippy plugins — so the
//! one place this repo can grow dynamic concurrency checking is the lock
//! shim itself. With the `lockcheck` feature (or `--cfg lockcheck`) every
//! [`Mutex`] and [`RwLock`] is assigned a *class* from its creation site
//! (file:line:column), each thread records the stack of classes it
//! currently holds, and a process-global order graph accumulates every
//! "acquired B while holding A" edge, in the style of the Linux kernel's
//! lockdep:
//!
//! * acquiring a class already held by the same thread panics immediately
//!   (recursive acquire — a self-deadlock for `Mutex`, a writer-starvation
//!   deadlock window for `RwLock`);
//! * acquiring a class from which the order graph can already reach a
//!   currently-held class panics (an A→…→B cycle: two threads interleaving
//!   those chains can deadlock), printing **both** acquisition backtraces —
//!   the stored one that created the conflicting edge and the current one;
//! * `try_lock` records the hold but adds no edges (a non-blocking acquire
//!   cannot deadlock).
//!
//! The checker never fires on clean, consistently-ordered usage, and with
//! the feature off these types compile to plain `std::sync` wrappers — the
//! guards are type aliases and no class field exists, so the cost is
//! exactly zero.

use std::sync::{self, PoisonError};

#[cfg(lockcheck)]
mod lockcheck {
    //! The lockdep engine: creation-site classes, per-thread held stacks,
    //! and the global acquisition-order graph.

    use std::backtrace::Backtrace;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

    /// One "acquired `to` while holding `from`" observation, kept from the
    /// first time the edge appeared so a later cycle can print it.
    struct Edge {
        /// Where the held (`from`) lock had been acquired.
        held_at: String,
        /// Backtrace of the acquisition that created the edge.
        backtrace: String,
    }

    #[derive(Default)]
    struct Graph {
        /// Class-id interning: creation site -> dense id.
        ids: HashMap<(&'static str, u32, u32), u32>,
        /// Dense id -> human-readable creation site.
        names: Vec<String>,
        /// `(from, to)`: `to` was acquired while `from` was held.
        edges: HashMap<(u32, u32), Edge>,
    }

    fn graph() -> &'static StdMutex<Graph> {
        static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
    }

    /// A lock hold on the current thread's stack.
    struct Held {
        class: u32,
        /// The `.lock()`/`.read()`/`.write()` call site.
        acquired_at: &'static Location<'static>,
        kind: &'static str,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Interns the creation site of a lock into its class id.
    pub(crate) fn class_for(loc: &'static Location<'static>) -> u32 {
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        let key = (loc.file(), loc.line(), loc.column());
        if let Some(&id) = g.ids.get(&key) {
            return id;
        }
        let id = g.names.len() as u32;
        g.names
            .push(format!("{}:{}:{}", loc.file(), loc.line(), loc.column()));
        g.ids.insert(key, id);
        id
    }

    /// Whether the order graph can reach `target` starting from `from`.
    fn reaches(g: &Graph, from: u32, target: u32) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; g.names.len()];
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if std::mem::replace(&mut seen[n as usize], true) {
                continue;
            }
            stack.extend(
                g.edges
                    .keys()
                    .filter(|(f, _)| *f == n)
                    .map(|(_, t)| *t)
                    .filter(|t| !seen[*t as usize]),
            );
        }
        false
    }

    /// Runs the lockdep checks for a blocking acquire of `class` at `site`,
    /// then records the hold. Panics on a recursive same-class acquire or
    /// an order cycle; must be called *before* blocking on the real lock so
    /// the report fires instead of the deadlock.
    pub(crate) fn before_acquire(class: u32, kind: &'static str, site: &'static Location<'static>) {
        HELD.with(|held| {
            let held = held.borrow();
            if let Some(first) = held.iter().find(|h| h.class == class) {
                let name = class_name(class);
                panic!(
                    "lockcheck: recursive acquire of lock class {name} \
                     ({kind} at {site}): already held by this thread via \
                     {} at {}\ncurrent acquisition backtrace:\n{}",
                    first.kind,
                    first.acquired_at,
                    Backtrace::force_capture(),
                );
            }
            if !held.is_empty() {
                let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
                // Cycle check first: can the class being acquired already
                // reach any held class through recorded edges?
                for h in held.iter() {
                    if reaches(&g, class, h.class) {
                        let conflict = g
                            .edges
                            .get(&(class, h.class))
                            .map(|e| {
                                format!(
                                    "conflicting edge {} -> {} (held at {}), recorded at:\n{}",
                                    g.names[class as usize],
                                    g.names[h.class as usize],
                                    e.held_at,
                                    e.backtrace
                                )
                            })
                            .unwrap_or_else(|| {
                                format!(
                                    "conflicting path {} ->* {} (transitive)",
                                    g.names[class as usize], g.names[h.class as usize]
                                )
                            });
                        panic!(
                            "lockcheck: lock-order cycle — acquiring class {} \
                             ({kind} at {site}) while holding class {} ({} at {}) \
                             would invert the recorded order\n{}\ncurrent \
                             acquisition backtrace:\n{}",
                            g.names[class as usize],
                            g.names[h.class as usize],
                            h.kind,
                            h.acquired_at,
                            conflict,
                            Backtrace::force_capture(),
                        );
                    }
                }
                // No cycle: record the new edges (first observation keeps
                // its backtrace for future reports).
                for h in held.iter() {
                    let held_at = format!("{} at {}", h.kind, h.acquired_at);
                    g.edges.entry((h.class, class)).or_insert_with(|| Edge {
                        held_at,
                        backtrace: Backtrace::force_capture().to_string(),
                    });
                }
            }
        });
        push_hold(class, kind, site);
    }

    /// Records a hold without order checks — the `try_lock` path, which
    /// cannot deadlock but whose guard still orders later acquires.
    pub(crate) fn push_hold(class: u32, kind: &'static str, site: &'static Location<'static>) {
        HELD.with(|held| {
            held.borrow_mut().push(Held {
                class,
                acquired_at: site,
                kind,
            });
        });
    }

    /// Pops the most recent hold of `class` (guard drop).
    pub(crate) fn release(class: u32) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(i) = held.iter().rposition(|h| h.class == class) {
                held.remove(i);
            }
        });
    }

    fn class_name(class: u32) -> String {
        graph()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .names
            .get(class as usize)
            .cloned()
            .unwrap_or_else(|| format!("#{class}"))
    }
}

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Debug)]
#[cfg_attr(not(lockcheck), derive(Default))]
pub struct Mutex<T: ?Sized> {
    /// Lockdep class of this lock's creation site.
    #[cfg(lockcheck)]
    class: u32,
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
#[cfg(not(lockcheck))]
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Guard returned by [`Mutex::lock`]; releases the lockdep hold on drop.
#[cfg(lockcheck)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    class: u32,
}

#[cfg(lockcheck)]
impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(lockcheck)]
impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(lockcheck)]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        lockcheck::release(self.class);
    }
}

#[cfg(lockcheck)]
impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex. Under `lockcheck`, the caller's location becomes
    /// the lock's class.
    #[cfg_attr(lockcheck, track_caller)]
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(lockcheck)]
            class: lockcheck::class_for(std::panic::Location::caller()),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(lockcheck)]
impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    #[cfg_attr(lockcheck, track_caller)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(lockcheck)]
        lockcheck::before_acquire(self.class, "Mutex::lock", std::panic::Location::caller());
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        #[cfg(lockcheck)]
        return MutexGuard {
            inner,
            class: self.class,
        };
        #[cfg(not(lockcheck))]
        inner
    }

    /// Attempts to acquire the lock without blocking.
    #[cfg_attr(lockcheck, track_caller)]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(lockcheck)]
        return inner.map(|inner| {
            // A successful try_lock is a hold (later acquires nest under
            // it) but records no ordering edge: it could not have blocked.
            lockcheck::push_hold(
                self.class,
                "Mutex::try_lock",
                std::panic::Location::caller(),
            );
            MutexGuard {
                inner,
                class: self.class,
            }
        });
        #[cfg(not(lockcheck))]
        inner
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free `read()`/`write()`.
#[derive(Debug)]
#[cfg_attr(not(lockcheck), derive(Default))]
pub struct RwLock<T: ?Sized> {
    /// Lockdep class of this lock's creation site.
    #[cfg(lockcheck)]
    class: u32,
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
#[cfg(not(lockcheck))]
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
#[cfg(not(lockcheck))]
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Guard returned by [`RwLock::read`]; releases the lockdep hold on drop.
#[cfg(lockcheck)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    class: u32,
}

/// Guard returned by [`RwLock::write`]; releases the lockdep hold on drop.
#[cfg(lockcheck)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    class: u32,
}

#[cfg(lockcheck)]
impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(lockcheck)]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        lockcheck::release(self.class);
    }
}

#[cfg(lockcheck)]
impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(lockcheck)]
impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(lockcheck)]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        lockcheck::release(self.class);
    }
}

#[cfg(lockcheck)]
impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(lockcheck)]
impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock. Under `lockcheck`, the caller's
    /// location becomes the lock's class.
    #[cfg_attr(lockcheck, track_caller)]
    pub fn new(value: T) -> Self {
        RwLock {
            #[cfg(lockcheck)]
            class: lockcheck::class_for(std::panic::Location::caller()),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(lockcheck)]
impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    ///
    /// Under `lockcheck`, a read acquire participates in ordering exactly
    /// like a write: read-read recursion on one class is flagged too, since
    /// a queued writer between the two reads deadlocks `std::sync::RwLock`.
    #[cfg_attr(lockcheck, track_caller)]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(lockcheck)]
        lockcheck::before_acquire(self.class, "RwLock::read", std::panic::Location::caller());
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        #[cfg(lockcheck)]
        return RwLockReadGuard {
            inner,
            class: self.class,
        };
        #[cfg(not(lockcheck))]
        inner
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    #[cfg_attr(lockcheck, track_caller)]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(lockcheck)]
        lockcheck::before_acquire(self.class, "RwLock::write", std::panic::Location::caller());
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        #[cfg(lockcheck)]
        return RwLockWriteGuard {
            inner,
            class: self.class,
        };
        #[cfg(not(lockcheck))]
        inner
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    /// With `lockcheck` off, the shim is a zero-cost veneer: no class
    /// field, guards are the std types.
    #[cfg(not(lockcheck))]
    #[test]
    fn lockcheck_off_is_zero_overhead() {
        use std::mem::size_of;
        assert_eq!(size_of::<Mutex<u64>>(), size_of::<sync::Mutex<u64>>());
        assert_eq!(size_of::<RwLock<u64>>(), size_of::<sync::RwLock<u64>>());
        // The guard types are literal aliases of the std guards, so there
        // is no Drop hook and no per-acquire bookkeeping.
        fn id<'a>(g: sync::MutexGuard<'a, u64>) -> MutexGuard<'a, u64> {
            g
        }
        let m = sync::Mutex::new(7u64);
        assert_eq!(*id(m.lock().unwrap()), 7);
    }

    #[cfg(lockcheck)]
    mod lockdep {
        use super::super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        fn panics(f: impl FnOnce()) -> String {
            let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a lockcheck panic");
            err.downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        }

        #[test]
        fn ab_ba_interleave_panics_with_both_backtraces() {
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            {
                // Establish the order A -> B.
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // Inverting it must fire before the deadlock can happen.
            let msg = panics(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            });
            assert!(msg.contains("lock-order cycle"), "{msg}");
            assert!(
                msg.contains("recorded at") && msg.contains("current acquisition backtrace"),
                "report must carry both acquisition backtraces: {msg}"
            );
        }

        #[test]
        fn rwlock_cycles_are_caught_too() {
            let a = RwLock::new(0u32);
            let b = Mutex::new(0u32);
            {
                let _ga = a.read();
                let _gb = b.lock();
            }
            let msg = panics(|| {
                let _gb = b.lock();
                let _ga = a.write();
            });
            assert!(msg.contains("lock-order cycle"), "{msg}");
        }

        #[test]
        fn transitive_cycle_is_caught() {
            let a = Mutex::new(());
            let b = Mutex::new(());
            let c = Mutex::new(());
            {
                let _ga = a.lock();
                let _gb = b.lock(); // A -> B
            }
            {
                let _gb = b.lock();
                let _gc = c.lock(); // B -> C
            }
            // C -> A closes the three-node loop.
            let msg = panics(|| {
                let _gc = c.lock();
                let _ga = a.lock();
            });
            assert!(msg.contains("lock-order cycle"), "{msg}");
        }

        #[test]
        fn recursive_same_class_acquire_panics() {
            let m = Mutex::new(0u32);
            let msg = panics(|| {
                let _g1 = m.lock();
                let _g2 = m.lock(); // self-deadlock without the checker
            });
            assert!(msg.contains("recursive acquire"), "{msg}");
        }

        #[test]
        fn recursive_rwlock_read_panics() {
            // Read-read recursion deadlocks std::sync::RwLock when a writer
            // queues between the two reads; lockdep flags it always.
            let l = RwLock::new(0u32);
            let msg = panics(|| {
                let _g1 = l.read();
                let _g2 = l.read();
            });
            assert!(msg.contains("recursive acquire"), "{msg}");
        }

        #[test]
        fn clean_ordered_usage_stays_silent() {
            let a = Mutex::new(0u32);
            let b = RwLock::new(0u32);
            for _ in 0..100 {
                let mut ga = a.lock();
                let gb = b.read();
                *ga += *gb;
            }
            // Same consistent order from another thread, concurrently.
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..100 {
                            let _ga = a.lock();
                            let _gb = b.write();
                        }
                    });
                }
            });
            // Sequential (non-nested) use in any order is fine too.
            drop(b.write());
            drop(a.lock());
            drop(b.read());
            assert!(a.try_lock().is_some());
        }

        #[test]
        fn try_lock_holds_but_adds_no_edges() {
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            {
                // try_lock(B) while holding A records no A -> B edge...
                let _ga = a.lock();
                let _gb = b.try_lock().expect("uncontended");
            }
            {
                // ...so the reverse blocking order stays legal.
                let _gb = b.lock();
                let _ga = a.lock();
            }
        }

        #[test]
        fn guard_drop_releases_the_hold() {
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            {
                let _ga = a.lock();
            } // A released here...
            {
                let _gb = b.lock();
                let _ga = a.lock(); // ...so B -> A is first nesting, no cycle.
            }
        }
    }
}
