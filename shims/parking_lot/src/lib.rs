//! Offline stand-in for `parking_lot`: the same non-poisoning `lock()` /
//! `read()` / `write()` API, backed by `std::sync`. Poisoned locks are
//! recovered transparently (parking_lot has no poisoning), so panicking
//! threads never wedge the burst-buffer state for everyone else.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
