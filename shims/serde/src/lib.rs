//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this shim provides just enough of serde's surface for the workspace to
//! compile: the `Serialize`/`Deserialize` marker traits and the matching
//! no-op derive macros. Nothing in the workspace performs byte-level
//! serialization today — wire messages travel through typed in-process
//! channels — so the derives only have to exist, not generate codecs. If the
//! workspace is ever built against the real serde, this shim can be deleted
//! from `[workspace.dependencies]` without touching any other file.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Implemented for every type so
/// generic bounds written against it keep compiling.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`. Implemented for every type so
/// generic bounds written against it keep compiling.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
