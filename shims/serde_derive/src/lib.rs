//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The shim's traits are blanket-implemented for every type, so the derive
//! macros have nothing to generate — they exist purely so that
//! `#[derive(Serialize, Deserialize)]` attributes across the workspace keep
//! compiling without crates.io access.

use proc_macro::TokenStream;

/// Derives the shim's blanket-implemented `Serialize`; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives the shim's blanket-implemented `Deserialize`; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
