//! Offline stand-in for `criterion`: enough API for the workspace's
//! `cargo bench` targets to compile and produce coarse wall-clock numbers
//! (median of a fixed number of timed batches). No statistics, plots or
//! regression tracking — just a smoke-runner so benches stay honest in an
//! environment without crates.io access.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Times `routine` with the shim's standard batch plan (median of 7 batches
/// of 64 iterations) and returns the median cost in nanoseconds per
/// iteration — the programmatic companion to [`Bencher::iter`], for callers
/// that need the number itself (e.g. to embed a wall-clock data point in a
/// machine-readable perf report) rather than a printed line.
pub fn measure_median_ns<O>(routine: impl FnMut() -> O) -> f64 {
    let mut bencher = Bencher::new();
    let mut routine = routine;
    bencher.iter(&mut routine);
    bencher.median_ns
}

/// Times `routine` in the warm steady state: one untimed block of `iters`
/// calls to pull the working set into cache and train branch predictors,
/// then `reps` timed blocks keeping the minimum block mean, in nanoseconds
/// per iteration.
///
/// Use this instead of [`measure_median_ns`] when the routine's working set
/// is large (e.g. a scheduler carrying 10⁵ tenant queues): the standard
/// 7×64-iteration batch plan never escapes the cold-cache transient at that
/// scale, so its median reports compulsory-miss cost rather than the
/// steady-state cost the number is meant to track, and the measurement
/// stops being comparable across working-set sizes. The min, as in
/// [`measure_interleaved_min_ns`], discards scheduler preemptions instead
/// of averaging them in.
pub fn measure_min_ns<O>(iters: u32, reps: u32, mut routine: impl FnMut() -> O) -> f64 {
    for _ in 0..iters {
        black_box(routine());
    }
    let mut best_ns = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        best_ns = best_ns.min(t0.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    best_ns
}

/// Times two routines **interleaved** — alternating timed blocks of
/// `iters` calls each, `reps` repetitions, keeping each side's minimum
/// block time — and returns `(a_ns, b_ns)` per iteration.
///
/// This is the right shape for measuring a *difference* between two
/// variants of the same hot path (e.g. an instrumented scheduler round
/// against its plain twin): back-to-back blocks see the same thermal and
/// frequency conditions, so machine drift cancels out of the comparison,
/// and the min discards scheduler preemptions instead of averaging them
/// in. Two independent [`measure_median_ns`] calls cannot do this — on a
/// busy host they disagree with themselves by more than a 10% overhead
/// budget.
pub fn measure_interleaved_min_ns<O1, O2>(
    iters: u32,
    reps: u32,
    mut a: impl FnMut() -> O1,
    mut b: impl FnMut() -> O2,
) -> (f64, f64) {
    // One untimed block each warms caches, branch predictors and any
    // lazily-allocated state out of the measurement.
    for _ in 0..iters {
        black_box(a());
        black_box(b());
    }
    let mut a_ns = f64::MAX;
    let mut b_ns = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(a());
        }
        a_ns = a_ns.min(t0.elapsed().as_nanos() as f64 / f64::from(iters));
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(b());
        }
        b_ns = b_ns.min(t1.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    (a_ns, b_ns)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    batches: u32,
    iters_per_batch: u32,
    median_ns: f64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            batches: 7,
            iters_per_batch: 64,
            median_ns: 0.0,
        }
    }

    /// Times `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut samples = Vec::with_capacity(self.batches as usize);
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            samples.push(elapsed.as_nanos() as f64 / f64::from(self.iters_per_batch));
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

fn report(group: &str, name: &str, median_ns: f64) {
    if median_ns >= 1_000_000.0 {
        println!("{group}/{name}: {:.3} ms/iter", median_ns / 1e6);
    } else if median_ns >= 1_000.0 {
        println!("{group}/{name}: {:.3} µs/iter", median_ns / 1e3);
    } else {
        println!("{group}/{name}: {median_ns:.1} ns/iter");
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count (accepted for API compatibility; the shim uses
    /// a fixed batch plan).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher, input);
        report(&self.name, &id.name, bencher.median_ns);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        report(&self.name, &id.to_string(), bencher.median_ns);
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        report("bench", &name.to_string(), bencher.median_ns);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
