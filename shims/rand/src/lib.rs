//! Offline stand-in for the `rand` crate (0.8-flavoured API surface).
//!
//! Provides the subset the workspace uses: [`RngCore`] (object-safe),
//! [`Rng::gen`] for `f64`/`u64`/`u32`/`bool`, [`Rng::gen_range`] over integer
//! and float ranges, [`SeedableRng::seed_from_u64`], and
//! [`rngs::SmallRng`] — a xoshiro256** generator seeded through SplitMix64,
//! matching the statistical quality the schedulers need for statistical
//! token draws. Deterministic for a fixed seed, like the real `SmallRng`.

use std::ops::Range;

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Debiased multiply-shift would be overkill for the shim's
                // simulation workloads; modulo bias is negligible for the
                // spans used here.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS entropy; the shim derives entropy from
    /// the system clock, which is enough for non-cryptographic simulation.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**), the shim's
    /// equivalent of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = SmallRng::seed_from_u64(9);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
