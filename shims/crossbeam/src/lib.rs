//! Offline stand-in for the parts of `crossbeam` the workspace uses: an
//! unbounded MPMC channel with cloneable senders *and* receivers, queue-depth
//! inspection (`len`), `try_recv`, and `recv_timeout` — the surface
//! `themis-net`'s endpoints and the server runtime rely on. Built on
//! `Mutex<VecDeque>` + `Condvar`; correctness over peak throughput.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; carries
    /// the unsent message like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting right now.
        Empty,
        /// No message waiting and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            self.chan.lock().push_back(msg);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.chan.lock().is_empty()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.lock();
            match q.pop_front() {
                Some(m) => Ok(m),
                None if self.chan.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive; fails once the channel is drained and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.lock();
            loop {
                if let Some(m) = q.pop_front() {
                    return Ok(m);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .chan
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.chan.lock();
            loop {
                if let Some(m) = q.pop_front() {
                    return Ok(m);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .chan
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.chan.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_propagates_both_ways() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_fires_when_quiet() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
